"""IR well-formedness and control-flow-form (CFF) checking.

Three layers:

* :func:`verify` — structural sanity of a world: jump arities and types,
  intrinsic call shapes, parameter ownership.  Transformations call this
  in tests after every pass.  ``verify(world, full=True)`` additionally
  runs the deep graph invariants below.
* :func:`verify_uses` / :func:`verify_scopes` /
  :func:`verify_effect_threads` — deep graph invariants:
  the def↔use edges must agree in both directions; no live def may
  reference a continuation (or a parameter of a continuation) that a
  rewrite pruned from the world; every parameter referenced from live
  code must have a *value-reachable* owner (binder liveness); and the
  recovered scope of every external function is closed.  These catch
  the classic mangling bugs: a dangling ``_peel`` target kept alive
  through an ``EvalOp`` wrapper, or a specialized continuation whose
  body still points into the scope of its mangled-away original.
* :func:`cff_violations` / :func:`is_cff` — the paper's *control-flow
  form* criterion.  A program is in CFF when every continuation is
  either a **basic block** (order-1 type: first-order parameters only)
  or a **top-level function** (order-2 type whose fn-typed parameters
  are return continuations), and continuations are only used in ways a
  classical CFG+SSA backend can lower: as jump/branch targets, as the
  callee of a call, or as the return-continuation argument of a call.
  Reaching CFF is the goal of closure elimination (experiment T2); the
  bytecode backend refuses anything outside CFF.
"""

from __future__ import annotations

from .defs import Continuation, Def, Intrinsic, Param, Use
from .primops import (
    Alloc,
    Bottom,
    Enter,
    EvalOp,
    Extract,
    Literal,
    Load,
    Store,
    TupleVal,
)
from .scope import Scope, scope_of, top_level_of
from .types import FnType
from .world import World


class VerifyError(Exception):
    """A structural invariant of the IR does not hold."""


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


def verify(world: World, *, full: bool = False) -> None:
    """Check structural well-formedness; raises :class:`VerifyError`.

    With ``full=True``, also run the deep graph invariants
    (:func:`verify_uses`, :func:`verify_scopes`) — slower, intended for
    ``verify_each_pass`` pipelines and the fuzzing oracle.
    """
    for cont in world.continuations():
        _verify_params(cont)
        if cont.has_body():
            _verify_jump(cont)
    if full:
        verify_uses(world)
        verify_scopes(world)
        verify_effect_threads(world)


def _verify_params(cont: Continuation) -> None:
    if len(cont.params) != cont.fn_type.num_params:
        raise VerifyError(
            f"{cont.unique_name()}: {len(cont.params)} params but type "
            f"{cont.fn_type}"
        )
    for index, (param, t) in enumerate(zip(cont.params, cont.fn_type.param_types)):
        if param.continuation is not cont:
            raise VerifyError(
                f"{cont.unique_name()}: param {index} owned by "
                f"{param.continuation.unique_name()}"
            )
        if param.index != index:
            raise VerifyError(
                f"{cont.unique_name()}: param {index} has index {param.index}"
            )
        if param.type is not t:
            raise VerifyError(
                f"{cont.unique_name()}: param {index} typed {param.type}, "
                f"type says {t}"
            )


def _verify_jump(cont: Continuation) -> None:
    callee = _peel(cont.callee)
    callee_type = callee.type
    if not isinstance(callee_type, FnType):
        raise VerifyError(
            f"{cont.unique_name()}: callee {callee.unique_name()} is not "
            f"fn-typed ({callee_type})"
        )
    args = cont.args
    if isinstance(callee, Continuation) and callee.intrinsic == Intrinsic.MATCH:
        _verify_match(cont, callee, args)
        return
    if len(args) != callee_type.num_params:
        raise VerifyError(
            f"{cont.unique_name()}: {len(args)} args for {callee_type}"
        )
    for index, (arg, t) in enumerate(zip(args, callee_type.param_types)):
        if arg.type is not t:
            raise VerifyError(
                f"{cont.unique_name()}: arg {index} typed {arg.type}, "
                f"callee {callee.unique_name()} wants {t}"
            )


def _verify_match(cont: Continuation, callee: Continuation,
                  args: tuple[Def, ...]) -> None:
    types = callee.fn_type.param_types
    if len(args) < 3:
        raise VerifyError(f"{cont.unique_name()}: match needs mem, value, default")
    mem_t, value_t, default_t, arm_t = types[0], types[1], types[2], types[3]
    checks = [(args[0], mem_t), (args[1], value_t), (args[2], default_t)]
    for arg in args[3:]:
        checks.append((arg, arm_t))
    for index, (arg, t) in enumerate(checks):
        if arg.type is not t:
            raise VerifyError(
                f"{cont.unique_name()}: match operand {index} typed "
                f"{arg.type}, expected {t}"
            )


# ---------------------------------------------------------------------------
# deep graph invariants: use-lists, dangling defs, scope containment
# ---------------------------------------------------------------------------


def _rooted_continuations(world: World) -> set[Continuation]:
    """Continuations reachable *as values* from the external roots.

    The walk follows operand edges only — a reference to a parameter
    does **not** pull its owning continuation in.  A continuation in
    this set can actually be jumped to at run time; one outside it can
    never be invoked, so its parameters can never be bound.  Mirrors
    cleanup's garbage collection: passes may legally leave unreachable
    garbage behind, so the deep scope checks apply to this set only.
    """
    rooted: set[Continuation] = set()
    queue: list[Continuation] = list(world.externals())
    seen: set[Def] = set()
    while queue:
        cont = queue.pop()
        if cont in rooted:
            continue
        rooted.add(cont)
        stack: list[Def] = list(cont.ops)
        while stack:
            d = stack.pop()
            if d in seen:
                continue
            seen.add(d)
            if isinstance(d, Continuation):
                if d not in rooted:
                    queue.append(d)
                continue
            if isinstance(d, Param):
                continue  # a use of a binder, not a way to invoke it
            stack.extend(d.ops)
    return rooted


def _reachable_defs(world: World, roots=None) -> list[Def]:
    """Every def reachable from *roots* (default: all registered
    continuations) — operands, parameters, and transitive operands
    thereof — in deterministic order."""
    seen: dict[Def, None] = {}
    queue: list[Def] = []
    for cont in (world.continuations() if roots is None else roots):
        if cont not in seen:
            seen[cont] = None
            queue.append(cont)
    while queue:
        d = queue.pop()
        children = list(d.ops)
        if isinstance(d, Continuation):
            children.extend(d.params)
        for child in children:
            if child not in seen:
                seen[child] = None
                queue.append(child)
    return list(seen)


def verify_uses(world: World) -> None:
    """Check def↔use edges agree in both directions for the whole graph.

    Every operand edge ``user.ops[i] is d`` must be mirrored by a
    ``Use(user, i)`` entry in ``d``'s use-list, and every use-list entry
    must point back at a def that still holds the edge.  A one-sided
    edge means some rewrite forgot to detach (stale use) or re-attach
    (lost use) — the root cause of phantom scope members.
    """
    for d in _reachable_defs(world):
        for index, op in enumerate(d.ops):
            if Use(d, index) not in op._uses:
                raise VerifyError(
                    f"{d.unique_name()}: operand {index} "
                    f"({op.unique_name()}) does not record the use edge"
                )
        for user, index in d.uses:
            ops = user.ops
            if index >= len(ops) or ops[index] is not d:
                raise VerifyError(
                    f"{d.unique_name()}: stale use by "
                    f"{user.unique_name()} at operand {index}"
                )


def verify_scopes(world: World) -> None:
    """Check that the live program resolves inside the live graph.

    "Live" means value-reachable from the external roots
    (:func:`_rooted_continuations`): passes may leave unreachable
    garbage behind (the next cleanup collects it), and garbage is
    exempt — only code that can actually execute has to resolve.

    * No live def may reference a continuation that was pruned from the
      world — a dangling ``_peel`` target left behind by a rewrite.
    * No live def may reference a parameter whose owning continuation is
      dead or unregistered, or that the owner no longer lists (a
      ``remove_param``/mangle leftover).
    * **Binder liveness**: every parameter referenced from live code
      must be bound by a continuation that live code can invoke — the
      owner must itself be value-reachable.  A rewrite that redirects
      calls to a specialized copy but leaves body references into the
      original's parameters breaks exactly this.
    * **Closedness of externals**: the recovered scope of an external
      (bodied) function has no free parameters — everything an entry
      point depends on is bound within it.  (Scope membership is a
      use-closure, so this is not implied by the previous checks.)
    """
    live = set(world.continuations())
    rooted = _rooted_continuations(world)

    def check_continuation(d: Continuation, via: Def) -> None:
        if d not in live and not d.is_intrinsic():
            raise VerifyError(
                f"{via.unique_name()}: references continuation "
                f"{d.unique_name()} that was rewritten away"
            )

    def check_param(p: Param, via: Def) -> None:
        owner = p.continuation
        if owner.is_intrinsic():
            return
        if owner not in live:
            raise VerifyError(
                f"{via.unique_name()}: references parameter "
                f"{p.unique_name()} of dead continuation "
                f"{owner.unique_name()}"
            )
        if p.index >= len(owner.params) or owner.params[p.index] is not p:
            raise VerifyError(
                f"{via.unique_name()}: references removed parameter "
                f"{p.unique_name()} of {owner.unique_name()}"
            )
        if owner not in rooted:
            raise VerifyError(
                f"{via.unique_name()}: references parameter "
                f"{p.unique_name()} whose owner {owner.unique_name()} "
                f"is unreachable — the binder can never be invoked"
            )

    for d in _reachable_defs(world, roots=rooted):
        for op in d.ops:
            if isinstance(op, Continuation):
                check_continuation(op, d)
            elif isinstance(op, Param):
                check_param(op, d)

    for cont in world.externals():
        if not cont.has_body():
            continue
        free = scope_of(cont).free_params()
        if free:
            names = ", ".join(p.unique_name() for p in free[:4])
            raise VerifyError(
                f"{cont.unique_name()}: external scope is not closed — "
                f"free parameter(s) {names}"
            )


def verify_effect_threads(world: World) -> None:
    """Every live memory op hangs off a well-formed effect thread.

    Walking a load/store/enter/alloc's ``mem`` operand backwards through
    producers must reach a mem-typed *source* — a continuation parameter
    or ``bottom`` — crossing only legitimate thread links: a store, the
    index-0 extract of another memory op's result pair, or a component
    of a reassembled ``(mem, value)`` tuple (the rebuild fallback when
    the sibling value may trap).  Anything else — a mem-typed select, a
    dynamic extract, a value smuggled into the thread by a bad rewrite —
    means an effect got detached from the order the token encodes.
    The memory optimizer (:mod:`repro.transform.mem_opt`) relinks
    threads wholesale, which is exactly what this check keeps honest
    under ``verify_each_pass``.
    """
    verdicts: dict[Def, bool] = {}

    def thread_ok(mem: Def) -> bool:
        chain: list[Def] = []
        cur = mem
        while True:
            cached = verdicts.get(cur)
            if cached is not None:
                verdict = cached
                break
            chain.append(cur)
            d = _peel(cur)
            if isinstance(d, (Param, Bottom)):
                verdict = True
                break
            if isinstance(d, Store):
                cur = d.mem
                continue
            if isinstance(d, Extract) and isinstance(d.index, Literal):
                agg = _peel(d.agg)
                if (isinstance(agg, (Load, Enter, Alloc))
                        and d.index.value == 0):
                    cur = agg.mem
                    continue
                if (isinstance(agg, TupleVal)
                        and d.index.value < len(agg.ops)):
                    cur = agg.op(d.index.value)
                    continue
            verdict = False
            break
        for link in chain:
            verdicts[link] = verdict
        return verdict

    for d in _reachable_defs(world, roots=_rooted_continuations(world)):
        if isinstance(d, (Load, Store, Enter, Alloc)):
            if not thread_ok(d.mem):
                raise VerifyError(
                    f"{d.unique_name()}: mem operand "
                    f"{d.mem.unique_name()} does not reach a well-formed "
                    f"effect thread"
                )


# ---------------------------------------------------------------------------
# control-flow form
# ---------------------------------------------------------------------------


def cff_violations(world: World) -> list[str]:
    """Reasons the world is not in control-flow form (empty = CFF)."""
    violations: list[str] = []
    for function in top_level_of(world):
        if not function.has_body():
            continue
        if function.fn_type.order() > 2:
            violations.append(
                f"{function.unique_name()}: order-{function.fn_type.order()} "
                f"function type {function.fn_type}"
            )
            continue
        scope = scope_of(function)
        free = scope.free_params()
        if free:
            names = ", ".join(p.unique_name() for p in free)
            violations.append(
                f"{function.unique_name()}: free parameters ({names})"
            )
        for cont in scope.continuations():
            if cont is function:
                continue
            if cont.fn_type.order() > 1:
                violations.append(
                    f"{cont.unique_name()} in {function.unique_name()}: "
                    f"inner continuation of order "
                    f"{cont.fn_type.order()} (a closure would be required)"
                )
        for cont in scope.continuations():
            if cont.has_body():
                violations.extend(_jump_violations(cont, scope))
    return violations


def _jump_violations(cont: Continuation, scope: Scope) -> list[str]:
    """Ways a single jump escapes what a CFG backend can lower."""
    violations: list[str] = []
    callee = _peel(cont.callee)
    entry = scope.entry

    def ok_return_target(d: Def) -> bool:
        d = _peel(d)
        if isinstance(d, Continuation):
            if d in scope:
                return d.fn_type.order() <= 1
            return True  # out-of-scope function: a static code address
        if isinstance(d, Param):
            return d.continuation is entry and isinstance(d.type, FnType)
        return False

    if isinstance(callee, Continuation):
        intrinsic = callee.intrinsic
        if intrinsic in (Intrinsic.BRANCH, Intrinsic.MATCH):
            if intrinsic == Intrinsic.BRANCH:
                targets = list(cont.args[2:])
            else:
                targets = [cont.args[2]]
                targets += [arm.op(1) for arm in cont.args[3:] if arm.num_ops == 2]
            for t in targets:
                if not ok_return_target(t):
                    violations.append(
                        f"{cont.unique_name()}: non-block branch target "
                        f"{t.unique_name()}"
                    )
        else:
            # A call: fn-typed arguments are only lowerable in the
            # callee's (single, conventional) return position.
            callee_ret_index = None
            for index in range(len(callee.params) - 1, -1, -1):
                if isinstance(callee.params[index].type, FnType):
                    callee_ret_index = index
                    break
            for index, arg in enumerate(cont.args):
                if not isinstance(arg.type, FnType):
                    continue
                if index != callee_ret_index:
                    violations.append(
                        f"{cont.unique_name()}: continuation argument "
                        f"{arg.unique_name()} at non-return position "
                        f"{index} of {callee.unique_name()}"
                    )
                elif not ok_return_target(arg):
                    violations.append(
                        f"{cont.unique_name()}: escaping continuation "
                        f"argument {arg.unique_name()}"
                    )
    elif isinstance(callee, Param):
        if callee.continuation is not entry:
            violations.append(
                f"{cont.unique_name()}: jump through inner-continuation "
                f"parameter {callee.unique_name()}"
            )
        for arg in cont.args:
            if isinstance(arg.type, FnType) and not ok_return_target(arg):
                violations.append(
                    f"{cont.unique_name()}: escaping continuation argument "
                    f"{arg.unique_name()}"
                )
    else:
        violations.append(
            f"{cont.unique_name()}: first-class callee "
            f"{callee.unique_name()} ({type(callee).__name__})"
        )
    return violations


def is_cff(world: World) -> bool:
    return not cff_violations(world)

"""Implicit scopes.

The paper's structural departure from nested IRs: Thorin has no binders
beyond continuation parameters and no explicit nesting.  "What belongs
to a function" is *recovered* from the dependence graph whenever a
transformation needs it:

    The scope of a continuation ``f`` is the smallest set containing
    ``f`` and the parameters of every continuation in the set, closed
    under *uses* (if ``d`` is in the set, every def with ``d`` as an
    operand is in the set).

Intuitively: everything that directly or transitively depends on ``f``'s
parameters is stuck inside ``f``; everything else floats freely and is
shared between scopes.  Lambda dropping/lifting change scope membership
by turning free defs into parameters and vice versa; the mangler copies
exactly the defs of a scope and shares the rest.
"""

from __future__ import annotations

from typing import Iterator

from .defs import Continuation, Def, Param
from .primops import Bottom, Literal


class Scope:
    """The scope of an *entry* continuation, recovered from the graph.

    A scope is a snapshot: it is computed eagerly at construction time
    and does not track later graph mutation.  Passes recompute scopes
    after rewriting (scope recovery is linear in the scope's size).
    """

    def __init__(self, entry: Continuation):
        self.entry = entry
        self._defs: dict[Def, None] = {}  # insertion-ordered set
        self._run()

    def _run(self) -> None:
        # The entry is *in* the scope but is not a flood source: a mere
        # reference to the entry (a call from outside, a recursive call)
        # must not pull the referrer into the scope.  Its params are the
        # real seeds.  Continuations discovered later *are* flood
        # sources: anything referencing an entry-dependent continuation
        # must be copied when the entry is specialized.
        queue: list[Def] = []
        self._defs[self.entry] = None
        for param in self.entry.params:
            self._defs[param] = None
            queue.append(param)
        while queue:
            d = queue.pop()
            for use in d.uses:
                self._insert(use.user, queue)

    def _insert(self, d: Def, queue: list[Def]) -> None:
        if d in self._defs:
            return
        self._defs[d] = None
        queue.append(d)
        if isinstance(d, Continuation):
            for param in d.params:
                if param not in self._defs:
                    self._defs[param] = None
                    queue.append(param)

    # ------------------------------------------------------------------

    def __contains__(self, d: Def) -> bool:
        return d in self._defs

    def __len__(self) -> int:
        return len(self._defs)

    def defs(self) -> Iterator[Def]:
        return iter(self._defs)

    def continuations(self) -> list[Continuation]:
        """Scope members that are continuations; the entry comes first."""
        conts = [d for d in self._defs if isinstance(d, Continuation)]
        conts.sort(key=lambda c: (c is not self.entry, c.gid))
        return conts

    def free_defs(self) -> list[Def]:
        """Out-of-scope defs referenced by the scope.

        Literals and bottoms are omitted: they are universally shareable
        and never interesting for closure analysis or lifting.  The
        result is deterministic (ordered by first occurrence).
        """
        free: dict[Def, None] = {}
        for d in self._defs:
            for op in d.ops:
                if op not in self._defs and not isinstance(op, (Literal, Bottom)):
                    free.setdefault(op, None)
        return list(free)

    def free_params(self) -> list[Param]:
        """Free defs that are parameters of *enclosing* continuations.

        A non-empty result means this scope captures its environment:
        turning the entry into a first-class value would require a
        closure.  Transitive: a free continuation's own free params count
        as well (the closure would have to capture them indirectly).
        """
        seen: set[Def] = set()
        result: dict[Param, None] = {}
        queue = self.free_defs()
        while queue:
            d = queue.pop()
            if d in seen:
                continue
            seen.add(d)
            if isinstance(d, Param):
                result.setdefault(d, None)
            elif isinstance(d, Continuation):
                if d.is_intrinsic():
                    continue
                inner = Scope(d)
                for f in inner.free_defs():
                    if f not in seen:
                        queue.append(f)
            else:
                for op in d.ops:
                    if op not in seen and not isinstance(op, (Literal, Bottom)):
                        queue.append(op)
        return list(result)

    def has_free_params(self) -> bool:
        return bool(self.free_params())


def top_level_continuations(world) -> list[Continuation]:
    """Continuations that sit in no other continuation's scope.

    These are the units of code generation: returning functions and
    (after closure elimination) nothing else.  Computed by elimination:
    every continuation that appears in the scope of another continuation
    is *not* top-level.
    """
    nested: set[Continuation] = set()
    conts = world.continuations()
    scopes = {c: Scope(c) for c in conts}
    for c, scope in scopes.items():
        for d in scope.defs():
            if isinstance(d, Continuation) and d is not c:
                nested.add(d)
    return [c for c in conts if c not in nested and not c.is_intrinsic()]

"""Implicit scopes.

The paper's structural departure from nested IRs: Thorin has no binders
beyond continuation parameters and no explicit nesting.  "What belongs
to a function" is *recovered* from the dependence graph whenever a
transformation needs it:

    The scope of a continuation ``f`` is the smallest set containing
    ``f`` and the parameters of every continuation in the set, closed
    under *uses* (if ``d`` is in the set, every def with ``d`` as an
    operand is in the set).

Intuitively: everything that directly or transitively depends on ``f``'s
parameters is stuck inside ``f``; everything else floats freely and is
shared between scopes.  Lambda dropping/lifting change scope membership
by turning free defs into parameters and vice versa; the mangler copies
exactly the defs of a scope and shares the rest.
"""

from __future__ import annotations

from typing import Iterator

from .defs import Continuation, Def, Param
from .primops import Bottom, Literal


def _gid_of(d: Def) -> int:
    return d.gid


class Scope:
    """The scope of an *entry* continuation, recovered from the graph.

    A scope is a snapshot: it is computed eagerly at construction time
    and does not track later graph mutation.  Passes recompute scopes
    after rewriting (scope recovery is linear in the scope's size).
    """

    #: Total ``Scope`` constructions, ever.  A cheap observability hook:
    #: regression tests assert that cached paths build no new scopes.
    constructed = 0

    def __init__(self, entry: Continuation):
        Scope.constructed += 1
        self.entry = entry
        self._defs: dict[Def, None] = {}  # insertion-ordered set
        self._free_params_memo: tuple[int, tuple[Param, ...]] | None = None
        self._run()

    def _run(self) -> None:
        # The entry is *in* the scope but is not a flood source: a mere
        # reference to the entry (a call from outside, a recursive call)
        # must not pull the referrer into the scope.  Its params are the
        # real seeds.  Continuations discovered later *are* flood
        # sources: anything referencing an entry-dependent continuation
        # must be copied when the entry is specialized.
        queue: list[Def] = []
        self._defs[self.entry] = None
        for param in self.entry.params:
            self._defs[param] = None
            queue.append(param)
        while queue:
            d = queue.pop()
            for user, _ in d.uses:
                self._insert(user, queue)
        self._canonicalize()

    def _canonicalize(self) -> None:
        # Canonical member order: creation (gid) order.  Flood order
        # depends on the traversal and on use-list internals, which an
        # in-place patch cannot reproduce; gid order is a pure function
        # of the member *set*, so a patched scope and a from-scratch
        # recomputation are bit-identical — the property the incremental
        # analysis manager and the ``cache``/``incremental`` fuzz-oracle
        # stages check.
        self._defs = dict.fromkeys(sorted(self._defs, key=_gid_of))

    def _insert(self, d: Def, queue: list[Def]) -> None:
        if d in self._defs:
            return
        self._defs[d] = None
        queue.append(d)
        if isinstance(d, Continuation):
            for param in d.params:
                if param not in self._defs:
                    self._defs[param] = None
                    queue.append(param)

    def _grow(self, sources) -> list[Def]:
        """Patch the scope in place after members gained new users.

        ``sources`` are existing members; the flood resumes from their
        use-lists, adding anything not yet a member — exactly the defs a
        from-scratch flood would now reach that the original one could
        not (a new use-edge into the scope only ever *adds* members; it
        can never remove any, so growth is the complete patch).  Returns
        the added defs; the member order is re-canonicalized, so a grown
        scope is bit-identical to a fresh recomputation.
        """
        defs = self._defs
        added: list[Def] = []
        queue: list[Def] = []

        def insert(d: Def) -> None:
            if d in defs:
                return
            defs[d] = None
            added.append(d)
            queue.append(d)
            if isinstance(d, Continuation):
                for param in d.params:
                    if param not in defs:
                        defs[param] = None
                        added.append(param)
                        queue.append(param)

        for d in sources:
            for user, _ in d.uses:
                insert(user)
        while queue:
            d = queue.pop()
            for user, _ in d.uses:
                insert(user)
        if added:
            self._canonicalize()
        return added

    # ------------------------------------------------------------------

    def __contains__(self, d: Def) -> bool:
        return d in self._defs

    def __len__(self) -> int:
        return len(self._defs)

    def defs(self) -> Iterator[Def]:
        return iter(self._defs)

    def continuations(self) -> list[Continuation]:
        """Scope members that are continuations; the entry comes first."""
        conts = [d for d in self._defs if isinstance(d, Continuation)]
        conts.sort(key=lambda c: (c is not self.entry, c.gid))
        return conts

    def free_defs(self) -> list[Def]:
        """Out-of-scope defs referenced by the scope.

        Literals and bottoms are omitted: they are universally shareable
        and never interesting for closure analysis or lifting.  The
        result is deterministic (ordered by first occurrence).
        """
        free: dict[Def, None] = {}
        for d in self._defs:
            for op in d.ops:
                if op not in self._defs and not isinstance(op, (Literal, Bottom)):
                    free.setdefault(op, None)
        return list(free)

    def free_params(self) -> list[Param]:
        """Free defs that are parameters of *enclosing* continuations.

        A non-empty result means this scope captures its environment:
        turning the entry into a first-class value would require a
        closure.  Transitive: a free continuation's own free params count
        as well (the closure would have to capture them indirectly).

        The result depends on the graph *outside* this scope, so it is
        memoized against the world's mutation generation, not against
        the scope itself.
        """
        generation = self.entry.world.generation
        memo = self._free_params_memo
        if memo is not None and memo[0] == generation:
            return list(memo[1])
        result = self._compute_free_params()
        self._free_params_memo = (generation, tuple(result))
        return result

    def _compute_free_params(self) -> list[Param]:
        seen: set[Def] = set()
        result: dict[Param, None] = {}
        queue = self.free_defs()
        while queue:
            d = queue.pop()
            if d in seen:
                continue
            seen.add(d)
            if isinstance(d, Param):
                result.setdefault(d, None)
            elif isinstance(d, Continuation):
                if d.is_intrinsic():
                    continue
                inner = scope_of(d)
                for f in inner.free_defs():
                    if f not in seen:
                        queue.append(f)
            else:
                for op in d.ops:
                    if op not in seen and not isinstance(op, (Literal, Bottom)):
                        queue.append(op)
        return list(result)

    def has_free_params(self) -> bool:
        return bool(self.free_params())


def scope_of(entry: Continuation) -> Scope:
    """An entry's scope, via the world's analysis cache when active.

    Falls back to a fresh :class:`Scope` when the world has no
    :class:`~repro.core.analyses.AnalysisManager` yet or caching is
    disabled — exactly the historical behaviour, which keeps the cached
    and uncached pipelines differentially comparable.
    """
    manager = entry.world._analyses
    if manager is not None and manager.enabled:
        return manager.scope(entry)
    return Scope(entry)


def top_level_of(world) -> list[Continuation]:
    """``top_level_continuations`` via the analysis cache when active."""
    manager = world._analyses
    if manager is not None and manager.enabled:
        return manager.top_level()
    return top_level_continuations(world)


def top_level_continuations(world) -> list[Continuation]:
    """Continuations that sit in no other continuation's scope.

    These are the units of code generation: returning functions and
    (after closure elimination) nothing else.

    One shared sweep instead of one ``Scope`` per continuation: for each
    def, propagate the set of entries whose params reach it along the
    edges the ``Scope`` flood follows (use-edges plus continuation ->
    param edges).  The flood never follows uses of the entry *itself*,
    so when the sweep flows through a continuation ``d`` it subtracts
    ``d`` from the set — a reference to an entry must not leak its scope
    into the referrer.  A continuation is nested iff any entry other
    than itself reaches it.  Set sizes are bounded by nesting depth, so
    this is near-linear in the graph instead of one full scope per
    continuation.
    """
    conts = world.continuations()
    reaching: dict[Def, set[Continuation]] = {}
    worklist: list[Def] = []

    def join(d: Def, incoming: set[Continuation]) -> None:
        have = reaching.get(d)
        if have is None:
            reaching[d] = set(incoming)
            worklist.append(d)
        elif not incoming <= have:
            have |= incoming
            worklist.append(d)

    for entry in conts:
        for param in entry.params:
            join(param, {entry})
    while worklist:
        d = worklist.pop()
        out = reaching[d]
        if d in out:
            out = out - {d}
            if not out:
                continue
        for user, _ in d.uses:
            join(user, out)
        if isinstance(d, Continuation):
            for param in d.params:
                join(param, out)

    def nested(c: Continuation) -> bool:
        have = reaching.get(c)
        return bool(have) and not have <= {c}

    return [c for c in conts if not nested(c) and not c.is_intrinsic()]

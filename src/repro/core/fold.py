"""Reference semantics for scalar operations.

This module is the single source of truth for what Thorin's arithmetic
means.  Constant folding in the world, the graph interpreter, and the
bytecode VM all evaluate scalars through these functions, so "the
optimizer folded it" and "the machine computed it" can never disagree —
a property the test suite checks with hypothesis.

Representation conventions:

* Integers are kept **canonical**: as unsigned Python ints in
  ``[0, 2**width)``.  Signed operations reinterpret the bits as two's
  complement on the way in and re-canonicalize on the way out.
* ``f64`` values are Python floats; ``f32`` values are Python floats
  that have been rounded through IEEE-754 single precision after every
  operation.
* Booleans are Python bools.

Defined corner cases (documented deviations from C's undefined behavior,
chosen to match common hardware):

* ``div``/``rem`` by zero trap (:class:`EvalError`); ``INT_MIN / -1``
  wraps.  Division truncates toward zero (C99 semantics).
* Shift amounts are masked by ``width - 1`` (x86 semantics).
* float→int casts truncate toward zero and wrap modulo ``2**width``
  (NaN casts to 0).
"""

from __future__ import annotations

import math
import struct

from .primops import ArithKind, CmpRel, MathKind
from .types import PrimType, PrimTypeKind


class EvalError(Exception):
    """A trapping operation (e.g. division by zero) was evaluated."""


def canonical_int(value: int, width: int) -> int:
    """Map any Python int to the canonical unsigned representative."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Two's-complement reading of a canonical unsigned value."""
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def round_f32(value: float) -> float:
    """Round a Python float through IEEE-754 single precision."""
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return math.copysign(math.inf, value)


def canonicalize(kind: PrimTypeKind, value) -> object:
    """Normalize an arbitrary Python value into the canonical form for *kind*."""
    if kind.is_bool:
        return bool(value)
    if kind.is_int:
        return canonical_int(int(value), kind.bitwidth)
    if kind is PrimTypeKind.F32:
        return round_f32(float(value))
    return float(value)


def public_value(kind: PrimTypeKind, value):
    """Convert canonical form to the value the surface language sees."""
    if kind.is_signed:
        return to_signed(value, kind.bitwidth)
    return value


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def _int_arith(kind: ArithKind, a: int, b: int, width: int, signed: bool) -> int:
    if kind is ArithKind.ADD:
        return canonical_int(a + b, width)
    if kind is ArithKind.SUB:
        return canonical_int(a - b, width)
    if kind is ArithKind.MUL:
        return canonical_int(a * b, width)
    if kind is ArithKind.AND:
        return a & b
    if kind is ArithKind.OR:
        return a | b
    if kind is ArithKind.XOR:
        return a ^ b
    if kind is ArithKind.SHL:
        return canonical_int(a << (b & (width - 1)), width)
    if kind is ArithKind.SHR:
        amount = b & (width - 1)
        if signed:
            return canonical_int(to_signed(a, width) >> amount, width)
        return a >> amount
    if kind.is_division:
        if b == 0:
            raise EvalError("integer division by zero")
        if signed:
            sa, sb = to_signed(a, width), to_signed(b, width)
            quotient = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                quotient = -quotient
            if kind is ArithKind.DIV:
                return canonical_int(quotient, width)
            return canonical_int(sa - quotient * sb, width)
        if kind is ArithKind.DIV:
            return a // b
        return a % b
    raise AssertionError(f"bad int arith kind {kind}")


def _float_arith(kind: ArithKind, a: float, b: float) -> float:
    if kind is ArithKind.ADD:
        return a + b
    if kind is ArithKind.SUB:
        return a - b
    if kind is ArithKind.MUL:
        return a * b
    if kind is ArithKind.DIV:
        if b == 0.0:
            if a == 0.0 or math.isnan(a):
                return math.nan
            sign = math.copysign(1.0, a) * math.copysign(1.0, b)
            return math.copysign(math.inf, sign)
        try:
            return a / b
        except OverflowError:  # pragma: no cover - double division can't overflow
            return math.copysign(math.inf, a) * math.copysign(1.0, b)
    if kind is ArithKind.REM:
        if b == 0.0 or math.isinf(a) or math.isnan(a) or math.isnan(b):
            return math.nan
        return math.fmod(a, b)
    raise AssertionError(f"bad float arith kind {kind}")


def _bool_arith(kind: ArithKind, a: bool, b: bool) -> bool:
    if kind is ArithKind.AND:
        return a and b
    if kind is ArithKind.OR:
        return a or b
    if kind is ArithKind.XOR:
        return a != b
    raise AssertionError(f"bad bool arith kind {kind}")


def arith(kind: ArithKind, prim: PrimType, a, b):
    """Evaluate ``a <kind> b`` at type *prim* on canonical values."""
    if prim.is_bool:
        return _bool_arith(kind, a, b)
    if prim.is_int:
        return _int_arith(kind, a, b, prim.bitwidth, prim.is_signed)
    result = _float_arith(kind, a, b)
    if prim.kind is PrimTypeKind.F32:
        result = round_f32(result)
    return result


def math_op(kind: MathKind, prim: PrimType, value: float) -> float:
    """Evaluate a unary float builtin; domain errors yield NaN."""
    assert prim.is_float, f"math op on non-float {prim}"
    try:
        if kind is MathKind.SQRT:
            result = math.sqrt(value) if value >= 0 else math.nan
        elif kind is MathKind.FABS:
            result = math.fabs(value)
        elif kind is MathKind.FLOOR:
            result = float(math.floor(value)) if math.isfinite(value) else value
        elif kind is MathKind.SIN:
            result = math.sin(value) if math.isfinite(value) else math.nan
        elif kind is MathKind.COS:
            result = math.cos(value) if math.isfinite(value) else math.nan
        elif kind is MathKind.EXP:
            result = math.exp(value) if value == value else math.nan
        elif kind is MathKind.LOG:
            if value > 0:
                result = math.log(value)
            elif value == 0:
                result = -math.inf
            else:
                result = math.nan
        else:  # pragma: no cover
            raise AssertionError(f"bad math kind {kind}")
    except OverflowError:
        result = math.inf
    if prim.kind is PrimTypeKind.F32:
        result = round_f32(result)
    return result


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def compare(rel: CmpRel, prim: PrimType, a, b) -> bool:
    """Evaluate ``a <rel> b`` at type *prim* on canonical values."""
    if prim.is_float:
        if math.isnan(a) or math.isnan(b):
            return rel is CmpRel.NE
        va, vb = a, b
    elif prim.is_signed:
        va, vb = to_signed(a, prim.bitwidth), to_signed(b, prim.bitwidth)
    else:  # bool compares as 0/1; unsigned compares canonically
        va, vb = a, b
    if rel is CmpRel.EQ:
        return va == vb
    if rel is CmpRel.NE:
        return va != vb
    if rel is CmpRel.LT:
        return va < vb
    if rel is CmpRel.LE:
        return va <= vb
    if rel is CmpRel.GT:
        return va > vb
    if rel is CmpRel.GE:
        return va >= vb
    raise AssertionError(f"bad cmp rel {rel}")


# ---------------------------------------------------------------------------
# Casts
# ---------------------------------------------------------------------------


def cast(to: PrimType, frm: PrimType, value):
    """Evaluate a value-converting cast on a canonical value."""
    if frm.is_float and to.is_int:
        if math.isnan(value):
            return 0
        return canonical_int(int(value), to.bitwidth)
    if frm.is_float and to.is_bool:
        return value != 0.0
    source = public_value(frm.kind, value) if not frm.is_float else value
    if to.is_bool:
        return bool(source)
    if to.is_int:
        return canonical_int(int(source), to.bitwidth)
    return canonicalize(to.kind, float(source))


_BITCAST_FORMATS = {8: "<B", 16: "<H", 32: "<I", 64: "<Q"}
_FLOAT_FORMATS = {32: "<f", 64: "<d"}


def bitcast(to: PrimType, frm: PrimType, value):
    """Evaluate a bit-reinterpreting cast between same-width scalars."""
    assert to.bitwidth == frm.bitwidth, "bitcast requires equal widths"
    width = to.bitwidth
    if frm.is_float:
        bits = struct.unpack(
            _BITCAST_FORMATS[width], struct.pack(_FLOAT_FORMATS[width], value)
        )[0]
    elif frm.is_bool:
        bits = int(value)
    else:
        bits = value
    if to.is_float:
        return struct.unpack(
            _FLOAT_FORMATS[width], struct.pack(_BITCAST_FORMATS[width], bits)
        )[0]
    if to.is_bool:
        return bool(bits & 1)
    return bits

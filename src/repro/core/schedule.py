"""Scheduling: placing floating primops into CFG blocks.

In Thorin, primops have no home — data dependencies (including the
``mem`` token for effects) are the only ordering.  Code generation and
human-readable printing need a *schedule*: an assignment of each primop
to a continuation (block) plus a block-local order.

Three placement policies, following the sea-of-nodes playbook:

* **early** — the shallowest legal block: the dominance-deepest block
  among the placements of the operands (params pin to their
  continuation).
* **late** — the deepest legal block: the dominator LCA of all users'
  placements.
* **smart** (default) — walk the idom chain from late up to early and
  pick the deepest block with minimal loop depth: loop-invariant code
  motion and rematerialization-avoidance fall out, no dedicated LICM
  pass required (experiment A2 measures exactly this).

All dominance questions are answered by the CFG's availability bitmasks
(:meth:`CFG.dom_depth` and friends) — no :class:`DomTree` is built, so
scheduling needs only a Scope, a CFG and a LoopTree, all of which the
analysis manager maintains incrementally.

Safety: operations that can trap (integer division) or touch memory are
never hoisted above their *late* placement, so a schedule cannot
introduce a fault or reorder effects — their relative order is fixed by
the mem token threading anyway.
"""

from __future__ import annotations

import enum

from .cfg import CFG
from .defs import Continuation, Def, Param
from .looptree import LoopTree
from .primops import (ArithKind, ArithOp, EvalOp, Extract, MemOp, PrimOp,
                      Slot)
from .scope import Scope


class Placement(enum.Enum):
    EARLY = "early"
    LATE = "late"
    SMART = "smart"


def _is_sinkable_only(op: PrimOp) -> bool:
    """Ops that must not be hoisted above their late placement."""
    if isinstance(op, (MemOp, Slot)):
        return True
    if isinstance(op, ArithOp) and op.kind.is_division:
        prim = op.type
        from .types import PrimType

        return isinstance(prim, PrimType) and prim.is_int
    return False


class Schedule:
    """A placement of every live primop of a scope into its CFG blocks."""

    def __init__(self, scope: Scope, placement: Placement = Placement.SMART,
                 cfg: CFG | None = None, looptree: LoopTree | None = None):
        self.scope = scope
        self.placement = placement
        self.cfg = cfg if cfg is not None else CFG(scope)
        self.looptree = looptree if looptree is not None else LoopTree(self.cfg)
        self._early: dict[Def, Continuation] = {}
        self._late: dict[PrimOp, Continuation] = {}
        self._block_of: dict[PrimOp, Continuation] = {}
        self._blocks: dict[Continuation, list[PrimOp]] = {
            c: [] for c in self.cfg.continuations()
        }
        self._run()

    # ------------------------------------------------------------------

    def block_of(self, op: PrimOp) -> Continuation:
        """The block the schedule placed *op* in."""
        return self._block_of[op]

    def ops_in(self, block: Continuation) -> list[PrimOp]:
        """Primops of *block*, in executable (dependence-respecting) order."""
        return self._blocks[block]

    def blocks(self) -> list[Continuation]:
        """Blocks in reverse postorder."""
        return self.cfg.continuations()

    def __contains__(self, op: PrimOp) -> bool:
        return op in self._block_of

    # ------------------------------------------------------------------

    def _live_primops(self) -> list[PrimOp]:
        """Scope primops transitively used by reachable bodies, topo order.

        Parameter-free primops normally float outside every scope and
        are materialized as constants by the backends — except ops that
        can trap or touch memory (a constant ``0/0`` must still trap at
        its original program point), which are scheduled like scoped ops.
        """
        order: list[PrimOp] = []
        visited: set[Def] = set()

        def visit(d: Def) -> None:
            if d in visited or not isinstance(d, PrimOp):
                return
            if d not in self.scope and not _is_sinkable_only(d):
                return
            visited.add(d)
            for op in d.ops:
                visit(op)
            order.append(d)

        for cont in self.cfg.continuations():
            if cont.has_body():
                for op in cont.ops:
                    visit(op)
        return order

    def _run(self) -> None:
        live = self._live_primops()  # operands precede users
        entry = self.cfg.entry
        depth = self.cfg.dom_depth
        lca_of = self.cfg.dom_lca

        # -- early pass (topological: operands already placed) ----------
        for op in live:
            block = entry
            for operand in op.ops:
                ob = self._early_of(operand)
                if ob is not None and depth(ob) > depth(block):
                    block = ob
            self._early[op] = block

        # -- late pass (reverse topological: users already placed) ------
        users_known: dict[PrimOp, Continuation] = self._late
        for op in reversed(live):
            lca: Continuation | None = None
            for user, _ in op.uses:
                if isinstance(user, Continuation):
                    if user in self._blocks:
                        lca = user if lca is None else lca_of(lca, user)
                elif isinstance(user, PrimOp):
                    ub = users_known.get(user)
                    if ub is not None:
                        lca = ub if lca is None else lca_of(lca, ub)
            if lca is None:
                # Only used by dead code; park at its early block.
                lca = self._early[op]
            users_known[op] = lca

        # -- choose (topological: operands' *final* placements are known,
        # so a pure op can never be hoisted above a late-pinned operand)
        for op in live:
            self._block_of[op] = self._choose(op)

        # -- block-local ordering ----------------------------------------
        # `live` is already topologically sorted, so appending in that
        # order keeps every op after the ops it depends on.
        for op in live:
            self._blocks[self._block_of[op]].append(op)

    def _early_of(self, d: Def) -> Continuation | None:
        if isinstance(d, Param):
            cont = d.continuation
            return cont if cont in self._blocks else None
        if isinstance(d, PrimOp):
            return self._early.get(d)
        return None  # continuations & out-of-scope defs don't constrain

    def _choose(self, op: PrimOp) -> Continuation:
        late = self._late[op]
        # The hoisting floor: the dominance-deepest *final* placement of
        # any operand (not its tentative early block — an operand pinned
        # late must keep its users below it).
        depth = self.cfg.dom_depth
        floor = self.cfg.entry
        for operand in op.ops:
            ob = self._operand_block(operand)
            if ob is not None and depth(ob) > depth(floor):
                floor = ob
        if not self.cfg.dominates(floor, late):
            # Dead-code parking or unreachable user; keep the floor.
            return floor
        if self.placement is Placement.LATE or _is_sinkable_only(op):
            return late
        if self.placement is Placement.EARLY:
            return floor
        # smart: deepest block on the idom path [late .. floor] with
        # minimal loop depth.
        best = late
        node = late
        while True:
            if self.looptree.depth(node) < self.looptree.depth(best):
                best = node
            if node is floor:
                break
            node = self.cfg.idom(node)
        return best

    # ------------------------------------------------------------------

    def verify(self) -> None:
        """Assert schedule legality (used by tests).

        Every op must be placed in a block dominated by its operands'
        blocks, and every user must be placed in a block dominated by the
        op's block.
        """
        for op, block in self._block_of.items():
            for operand in op.ops:
                ob = self._operand_block(operand)
                if ob is not None:
                    assert self.cfg.dominates(ob, block), (
                        f"{op.unique_name()} in {block.name} not dominated by "
                        f"operand {operand.unique_name()} in {ob.name}"
                    )
            local = self._blocks[block]
            for operand in op.ops:
                if isinstance(operand, PrimOp) and self._block_of.get(operand) is block:
                    assert local.index(operand) < local.index(op), (
                        f"block-local order violation: {operand.unique_name()} "
                        f"after its user {op.unique_name()}"
                    )

    def verify_effect_order(self) -> None:
        """Every memory op is listed after its effect-thread predecessor.

        ``transform.mem_opt`` splits the single mem chain into per-region
        threads, each of which is ordinary data dependence — so any
        topological block-local order preserves them.  The backends call
        this at emission time to pin that invariant: a load/store must
        never run before the op producing its incoming token.  Cheap
        (one pass over the placed ops), unlike the full :meth:`verify`.
        """
        for block, ops in self._blocks.items():
            pos = {op: i for i, op in enumerate(ops)}
            for op in ops:
                if not isinstance(op, MemOp) or isinstance(op, Slot):
                    continue
                token = op.mem
                while isinstance(token, EvalOp):
                    token = token.value
                producers = [token]
                if isinstance(token, Extract):
                    producers.append(token.agg)
                for producer in producers:
                    if (isinstance(producer, PrimOp)
                            and pos.get(producer, -1) > pos[op]):
                        raise AssertionError(
                            f"effect-thread order violation in "
                            f"{block.unique_name()}: {op.unique_name()} "
                            f"before its token producer "
                            f"{producer.unique_name()}"
                        )

    def _operand_block(self, d: Def) -> Continuation | None:
        if isinstance(d, Param):
            cont = d.continuation
            return cont if cont in self._blocks else None
        if isinstance(d, PrimOp):
            return self._block_of.get(d)
        return None

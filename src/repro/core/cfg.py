"""Control-flow graph of a scope.

Thorin stores no CFG; control flow *is* the jumps.  This module recovers
a conservative CFG for one scope, which dominance, loop analysis and the
scheduler consume.

Nodes are the scope's continuations reachable from the entry, plus a
virtual *exit*.  Successor rules for a body ``callee(args)``:

* ``branch``/``match`` intrinsics: the target arguments;
* other intrinsics (I/O): call-like — the in-scope return continuations
  among the arguments;
* an in-scope continuation: that continuation;
* an out-of-scope continuation (a call to another function): the
  in-scope fn-typed arguments (the return continuations we pass);
  if none, the exit;
* a parameter of the entry (e.g. the return continuation): the exit —
  its value is always bound by out-of-scope callers;
* anything else (parameter of an inner continuation, first-class value
  from a ``select``/``extract``): the *address-taken* set — every
  in-scope continuation that occurs somewhere in the scope in a
  non-callee position — plus the exit.  This is the CFA(0)-style
  over-approximation the paper relies on: precise enough for dominance
  and scheduling, sound in the presence of higher-order control flow.
"""

from __future__ import annotations

from typing import Iterable

from .defs import Continuation, Def, Intrinsic, Param
from .primops import EvalOp, Select
from .scope import Scope


class ExitNode:
    """The virtual exit of a scope's CFG."""

    def __init__(self, scope: Scope):
        self.name = f"<exit {scope.entry.unique_name()}>"
        self.gid = -1

    def unique_name(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover
        return self.name


CFGNode = "Continuation | ExitNode"


class CFG:
    """Forward CFG of a scope (reachable part), with RPO numbering."""

    def __init__(self, scope: Scope):
        self.scope = scope
        self.entry = scope.entry
        self.exit = ExitNode(scope)
        self._succs: dict[object, list[object]] = {}
        self._preds: dict[object, list[object]] = {}
        self._address_taken: list[Continuation] | None = None
        self._build()
        self._rpo: list[object] = self._compute_rpo()
        self._rpo_index = {n: i for i, n in enumerate(self._rpo)}
        self._dom_masks: list[int] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _compute_address_taken(self) -> list[Continuation]:
        if self._address_taken is None:
            taken: dict[Continuation, None] = {}
            for d in self.scope.defs():
                ops = d.ops
                start = 1 if isinstance(d, Continuation) and ops else 0
                for op in ops[start:]:
                    op = _peel(op)
                    if isinstance(op, Continuation) and op in self.scope:
                        taken.setdefault(op, None)
            self._address_taken = list(taken)
        return self._address_taken

    def _successors_of(self, cont: Continuation) -> list[object]:
        if not cont.has_body():
            return [self.exit]
        callee = _peel(cont.callee)
        args = cont.args
        succs: dict[object, None] = {}

        def add_scoped_cont(d: Def) -> None:
            d = _peel(d)
            if isinstance(d, Continuation) and d in self.scope:
                succs.setdefault(d, None)

        if isinstance(callee, Continuation):
            if callee.intrinsic == Intrinsic.BRANCH:
                add_scoped_cont(args[2])
                add_scoped_cont(args[3])
            elif callee.intrinsic == Intrinsic.MATCH:
                add_scoped_cont(args[2])
                for arm in args[3:]:
                    # (literal, target) tuples
                    if arm.num_ops == 2:
                        add_scoped_cont(arm.op(1))
            else:
                # Direct jump (in scope), or a call to another function.
                # Either way, every in-scope continuation we pass along
                # may receive control later (return continuations, join
                # points handed to callees) — conservative call-return
                # edges.
                if callee in self.scope:
                    succs[callee] = None
                for arg in args:
                    add_scoped_cont(arg)
            if not succs:
                succs[self.exit] = None
        elif isinstance(callee, Param) and callee.continuation is self.entry:
            # Returning through an entry parameter: control leaves the
            # scope, except for in-scope continuations we hand out.
            for arg in args:
                add_scoped_cont(arg)
            succs[self.exit] = None
        elif isinstance(callee, Select):
            for arm in (callee.tval, callee.fval):
                arm = _peel(arm)
                if isinstance(arm, Continuation) and arm in self.scope:
                    succs[arm] = None
                else:
                    for t in self._compute_address_taken():
                        succs[t] = None
                    succs[self.exit] = None
            for arg in args:
                add_scoped_cont(arg)
        else:
            # Unknown first-class callee: anything whose address was
            # taken in this scope, or control leaves the scope.
            for t in self._compute_address_taken():
                succs[t] = None
            for arg in args:
                add_scoped_cont(arg)
            succs[self.exit] = None
        return list(succs)

    def _build(self) -> None:
        self._succs[self.exit] = []
        self._preds[self.exit] = []
        worklist = [self.entry]
        self._succs[self.entry] = []
        while worklist:
            cont = worklist.pop()
            succs = self._successors_of(cont)
            self._succs[cont] = succs
            for s in succs:
                if s not in self._succs and isinstance(s, Continuation):
                    self._succs[s] = []
                    worklist.append(s)
        for node, succs in list(self._succs.items()):
            self._preds.setdefault(node, [])
            for s in succs:
                self._preds.setdefault(s, []).append(node)

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------

    def _still_valid(self, dirty: "Iterable[Continuation]") -> bool:
        """Check whether body rewires of *dirty* members left the CFG
        byte-identical.

        Sound under the caller's contract that scope membership did not
        change and only the listed continuations' bodies were rewired:
        a node's successor set depends only on its own body, the member
        set, and the scope-wide address-taken set — so it suffices to
        re-derive the address-taken set plus the dirty nodes' successor
        lists and compare.  On a match every downstream artifact (RPO,
        dominance masks, loop tree, placements) is provably unchanged.
        """
        old_taken = self._address_taken
        self._address_taken = None
        if old_taken is not None and self._compute_address_taken() != old_taken:
            return False
        for cont in dirty:
            old = self._succs.get(cont)
            if old is None:
                continue  # unreachable: its body is invisible to the CFG
            if self._successors_of(cont) != old:
                return False
        return True

    def _refresh(self) -> None:
        """Rebuild edges/RPO in place after member bodies changed.

        Runs the exact construction sequence of ``__init__`` on the
        (surviving) scope, so a refreshed CFG is bit-identical to a
        from-scratch one — only the expensive scope flood is skipped.
        """
        self._succs = {}
        self._preds = {}
        self._address_taken = None
        self._build()
        self._rpo = self._compute_rpo()
        self._rpo_index = {n: i for i, n in enumerate(self._rpo)}
        self._dom_masks = None

    def _compute_rpo(self) -> list[object]:
        post: list[object] = []
        visited: set[object] = set()

        def visit(node: object) -> None:
            stack = [(node, iter(self._succs.get(node, ())))]
            visited.add(node)
            while stack:
                top, it = stack[-1]
                advanced = False
                for s in it:
                    if s not in visited:
                        visited.add(s)
                        stack.append((s, iter(self._succs.get(s, ()))))
                        advanced = True
                        break
                if not advanced:
                    post.append(top)
                    stack.pop()

        visit(self.entry)
        post.reverse()
        return post

    # ------------------------------------------------------------------
    # dominance (availability bitmasks)
    # ------------------------------------------------------------------
    #
    # The scheduler needs dominance *queries* (depth, dominates, LCA,
    # idom walks), not a dominator tree datastructure.  We answer them
    # from availability sets: ``avail(n) = {n} ∪ ⋂ avail(p)`` over n's
    # predecessors — the textbook dataflow formulation of dominance —
    # computed to a fixpoint in reverse postorder with one Python int
    # per node as the bitset (bit i = the node with RPO index i).
    #
    # Every query then falls out of two facts: (a) a strict dominator
    # precedes its dominee in any RPO, and (b) the dominators of a node
    # form a chain ordered by dominance.  Hence within ``avail(n)`` the
    # set bits, read from high to low, walk the dominator chain from n
    # up to the entry:
    #
    # * depth(n)        = popcount(avail(n)) - 1
    # * dominates(a,b)  = bit rpo(a) set in avail(b)
    # * lca(a,b)        = node of the highest bit of avail(a) & avail(b)
    # * idom(n)         = node of the highest bit after clearing n's own
    #
    # No tree is ever built, so there is nothing to incrementally
    # maintain — the masks are a pure function of the CFG edges and are
    # recomputed lazily when a patched CFG invalidates them.

    def _compute_dom_masks(self) -> list[int]:
        rpo = self._rpo
        index = self._rpo_index
        n = len(rpo)
        full = (1 << n) - 1
        masks = [full] * n
        masks[0] = 1  # the entry is dominated only by itself
        preds = [[index[p] for p in self._preds[node]] for node in rpo]
        changed = True
        while changed:
            changed = False
            for i in range(1, n):
                acc = full
                for pi in preds[i]:
                    acc &= masks[pi]
                acc |= 1 << i
                if acc != masks[i]:
                    masks[i] = acc
                    changed = True
        return masks

    def _dom_mask(self, node: object) -> int:
        masks = self._dom_masks
        if masks is None:
            masks = self._dom_masks = self._compute_dom_masks()
        return masks[self._rpo_index[node]]

    def dom_depth(self, node: object) -> int:
        """Dominator-tree depth of *node* (entry = 0), without a tree."""
        return self._dom_mask(node).bit_count() - 1

    def dominates(self, a: object, b: object) -> bool:
        """Does *a* dominate *b* (reflexively)?"""
        return self._dom_mask(b) >> self._rpo_index[a] & 1 == 1

    def dom_lca(self, a: object, b: object) -> object:
        """Least common ancestor of *a* and *b* in the dominator tree."""
        common = self._dom_mask(a) & self._dom_mask(b)
        return self._rpo[common.bit_length() - 1]

    def idom(self, node: object) -> object:
        """Immediate dominator (the entry is its own idom)."""
        rest = self._dom_mask(node) ^ (1 << self._rpo_index[node])
        if rest == 0:
            return node  # the entry
        return self._rpo[rest.bit_length() - 1]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def nodes(self) -> list[object]:
        """All reachable nodes in reverse postorder (entry first)."""
        return list(self._rpo)

    def continuations(self) -> list[Continuation]:
        return [n for n in self._rpo if isinstance(n, Continuation)]

    def succs(self, node: object) -> list[object]:
        return self._succs.get(node, [])

    def preds(self, node: object) -> list[object]:
        return self._preds.get(node, [])

    def rpo_index(self, node: object) -> int:
        return self._rpo_index[node]

    def is_reachable(self, node: object) -> bool:
        return node in self._rpo_index

    def __contains__(self, node: object) -> bool:
        return node in self._rpo_index


def _peel(d: Def) -> Def:
    """Strip partial-evaluation markers off a control operand."""
    while isinstance(d, EvalOp):
        d = d.value
    return d

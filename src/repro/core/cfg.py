"""Control-flow graph of a scope.

Thorin stores no CFG; control flow *is* the jumps.  This module recovers
a conservative CFG for one scope, which dominance, loop analysis and the
scheduler consume.

Nodes are the scope's continuations reachable from the entry, plus a
virtual *exit*.  Successor rules for a body ``callee(args)``:

* ``branch``/``match`` intrinsics: the target arguments;
* other intrinsics (I/O): call-like — the in-scope return continuations
  among the arguments;
* an in-scope continuation: that continuation;
* an out-of-scope continuation (a call to another function): the
  in-scope fn-typed arguments (the return continuations we pass);
  if none, the exit;
* a parameter of the entry (e.g. the return continuation): the exit —
  its value is always bound by out-of-scope callers;
* anything else (parameter of an inner continuation, first-class value
  from a ``select``/``extract``): the *address-taken* set — every
  in-scope continuation that occurs somewhere in the scope in a
  non-callee position — plus the exit.  This is the CFA(0)-style
  over-approximation the paper relies on: precise enough for dominance
  and scheduling, sound in the presence of higher-order control flow.
"""

from __future__ import annotations

from .defs import Continuation, Def, Intrinsic, Param
from .primops import EvalOp, Select
from .scope import Scope


class ExitNode:
    """The virtual exit of a scope's CFG."""

    def __init__(self, scope: Scope):
        self.name = f"<exit {scope.entry.unique_name()}>"
        self.gid = -1

    def unique_name(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover
        return self.name


CFGNode = "Continuation | ExitNode"


class CFG:
    """Forward CFG of a scope (reachable part), with RPO numbering."""

    def __init__(self, scope: Scope):
        self.scope = scope
        self.entry = scope.entry
        self.exit = ExitNode(scope)
        self._succs: dict[object, list[object]] = {}
        self._preds: dict[object, list[object]] = {}
        self._address_taken: list[Continuation] | None = None
        self._build()
        self._rpo: list[object] = self._compute_rpo()
        self._rpo_index = {n: i for i, n in enumerate(self._rpo)}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _compute_address_taken(self) -> list[Continuation]:
        if self._address_taken is None:
            taken: dict[Continuation, None] = {}
            for d in self.scope.defs():
                ops = d.ops
                start = 1 if isinstance(d, Continuation) and ops else 0
                for op in ops[start:]:
                    op = _peel(op)
                    if isinstance(op, Continuation) and op in self.scope:
                        taken.setdefault(op, None)
            self._address_taken = list(taken)
        return self._address_taken

    def _successors_of(self, cont: Continuation) -> list[object]:
        if not cont.has_body():
            return [self.exit]
        callee = _peel(cont.callee)
        args = cont.args
        succs: dict[object, None] = {}

        def add_scoped_cont(d: Def) -> None:
            d = _peel(d)
            if isinstance(d, Continuation) and d in self.scope:
                succs.setdefault(d, None)

        if isinstance(callee, Continuation):
            if callee.intrinsic == Intrinsic.BRANCH:
                add_scoped_cont(args[2])
                add_scoped_cont(args[3])
            elif callee.intrinsic == Intrinsic.MATCH:
                add_scoped_cont(args[2])
                for arm in args[3:]:
                    # (literal, target) tuples
                    if arm.num_ops == 2:
                        add_scoped_cont(arm.op(1))
            else:
                # Direct jump (in scope), or a call to another function.
                # Either way, every in-scope continuation we pass along
                # may receive control later (return continuations, join
                # points handed to callees) — conservative call-return
                # edges.
                if callee in self.scope:
                    succs[callee] = None
                for arg in args:
                    add_scoped_cont(arg)
            if not succs:
                succs[self.exit] = None
        elif isinstance(callee, Param) and callee.continuation is self.entry:
            # Returning through an entry parameter: control leaves the
            # scope, except for in-scope continuations we hand out.
            for arg in args:
                add_scoped_cont(arg)
            succs[self.exit] = None
        elif isinstance(callee, Select):
            for arm in (callee.tval, callee.fval):
                arm = _peel(arm)
                if isinstance(arm, Continuation) and arm in self.scope:
                    succs[arm] = None
                else:
                    for t in self._compute_address_taken():
                        succs[t] = None
                    succs[self.exit] = None
            for arg in args:
                add_scoped_cont(arg)
        else:
            # Unknown first-class callee: anything whose address was
            # taken in this scope, or control leaves the scope.
            for t in self._compute_address_taken():
                succs[t] = None
            for arg in args:
                add_scoped_cont(arg)
            succs[self.exit] = None
        return list(succs)

    def _build(self) -> None:
        self._succs[self.exit] = []
        self._preds[self.exit] = []
        worklist = [self.entry]
        self._succs[self.entry] = []
        while worklist:
            cont = worklist.pop()
            succs = self._successors_of(cont)
            self._succs[cont] = succs
            for s in succs:
                if s not in self._succs and isinstance(s, Continuation):
                    self._succs[s] = []
                    worklist.append(s)
        for node, succs in list(self._succs.items()):
            self._preds.setdefault(node, [])
            for s in succs:
                self._preds.setdefault(s, []).append(node)

    def _compute_rpo(self) -> list[object]:
        post: list[object] = []
        visited: set[object] = set()

        def visit(node: object) -> None:
            stack = [(node, iter(self._succs.get(node, ())))]
            visited.add(node)
            while stack:
                top, it = stack[-1]
                advanced = False
                for s in it:
                    if s not in visited:
                        visited.add(s)
                        stack.append((s, iter(self._succs.get(s, ()))))
                        advanced = True
                        break
                if not advanced:
                    post.append(top)
                    stack.pop()

        visit(self.entry)
        post.reverse()
        return post

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def nodes(self) -> list[object]:
        """All reachable nodes in reverse postorder (entry first)."""
        return list(self._rpo)

    def continuations(self) -> list[Continuation]:
        return [n for n in self._rpo if isinstance(n, Continuation)]

    def succs(self, node: object) -> list[object]:
        return self._succs.get(node, [])

    def preds(self, node: object) -> list[object]:
        return self._preds.get(node, [])

    def rpo_index(self, node: object) -> int:
        return self._rpo_index[node]

    def is_reachable(self, node: object) -> bool:
        return node in self._rpo_index

    def __contains__(self, node: object) -> bool:
        return node in self._rpo_index


def _peel(d: Def) -> Def:
    """Strip partial-evaluation markers off a control operand."""
    while isinstance(d, EvalOp):
        d = d.value
    return d

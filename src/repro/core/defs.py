"""Core IR nodes.

A Thorin program is a *graph* of defs.  There are exactly three families
of nodes, mirroring the paper:

* :class:`Continuation` — a function that never returns; its *body* is a
  single call (a jump): ``callee(arg_1, ..., arg_n)``.  Continuations are
  **nominal**: two continuations with identical structure are still
  distinct (they are the only cyclic, mutable nodes in the graph).
* :class:`Param` — a parameter of a continuation.
* :class:`PrimOp` — a pure primitive operation (see ``primops.py``).
  Primops are **structural**: they are immutable and hash-consed by the
  :class:`~repro.core.world.World`, so structurally equal primops are the
  *same object* (global value numbering).

There is no explicit nesting and no instruction list: "where" a primop
lives is recovered on demand by :class:`~repro.core.scope.Scope` and
:mod:`~repro.core.schedule`.

Every def records its *uses* (who refers to it, at which operand index).
The use-list is what makes implicit scopes cheap to recover: the scope of
a continuation is the transitive closure of the use relation seeded with
the continuation and its parameters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from .types import FnType, Type

if TYPE_CHECKING:  # pragma: no cover
    from .world import World


def Use(user: "Def", index: int) -> tuple["Def", int]:
    """One occurrence of a def as operand ``index`` of ``user``.

    Uses are stored as plain ``(user, index)`` tuples: the use-list is
    rebuilt on every operand rewiring, and tuple construction is several
    times cheaper than a NamedTuple's Python-level ``__new__`` (this is
    one of the hottest allocation sites in the compiler).  Consumers
    unpack ``for user, index in d.uses`` directly.
    """
    return (user, index)


class Def:
    """Base class of every node in the graph."""

    __slots__ = ("world", "gid", "type", "name", "_ops", "_uses")

    def __init__(self, world: "World", type: Type, ops: tuple["Def", ...], name: str):
        self.world = world
        self.gid = world.next_gid()
        self.type = type
        self.name = name
        self._ops: tuple[Def, ...] = ()
        self._uses: dict[tuple[Def, int], None] = {}  # insertion-ordered set
        self._set_ops(ops)

    # -- operands -----------------------------------------------------------

    @property
    def ops(self) -> tuple["Def", ...]:
        return self._ops

    def op(self, index: int) -> "Def":
        return self._ops[index]

    @property
    def num_ops(self) -> int:
        return len(self._ops)

    def _set_ops(self, ops: tuple["Def", ...]) -> None:
        if ops == self._ops:
            return  # no edge changes: keep use-lists (and caches) intact
        self.world._note_touched(self, ops)
        for index, op in enumerate(self._ops):
            del op._uses[(self, index)]
        self._ops = ops
        for index, op in enumerate(ops):
            op._uses[(self, index)] = None

    # -- uses ---------------------------------------------------------------

    @property
    def uses(self) -> Iterator[tuple["Def", int]]:
        """All (user, index) pairs referring to this def.

        Deterministic order (insertion order).  Do not mutate the graph
        while iterating.
        """
        return iter(self._uses)

    @property
    def num_uses(self) -> int:
        return len(self._uses)

    def is_unused(self) -> bool:
        return not self._uses

    # -- classification -----------------------------------------------------

    def is_const(self) -> bool:
        """True if this def transitively depends on no parameter.

        Constants can be freely shared across scopes; they are never
        copied by the mangler.
        """
        from .primops import PrimOp

        if isinstance(self, Param):
            return False
        if isinstance(self, Continuation):
            # A continuation is "constant" from the point of view of
            # other scopes, but we answer structurally here: treat it as
            # non-const so analyses visit it explicitly.
            return False
        assert isinstance(self, PrimOp)
        return all(op.is_const() or isinstance(op, Continuation) for op in self._ops)

    # -- misc ----------------------------------------------------------------

    def unique_name(self) -> str:
        base = self.name if self.name else "_"
        return f"{base}_{self.gid}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.unique_name()}: {self.type}>"


class Param(Def):
    """A parameter of a continuation.

    Parameters are the graph's only "variables": a def belongs to the
    scope of a continuation exactly when it transitively uses one of the
    continuation's parameters.
    """

    __slots__ = ("continuation", "index")

    def __init__(self, world: "World", type: Type, continuation: "Continuation",
                 index: int, name: str):
        super().__init__(world, type, (), name)
        self.continuation = continuation
        self.index = index


class Intrinsic:
    """Names of compiler-known continuations.

    Intrinsic continuations have no body; jumping to one transfers
    control to behaviour built into the backend (branching, matching,
    I/O).  ``branch`` and ``match`` are how conditional control flow is
    expressed: a conditional jump is an ordinary jump whose callee is the
    ``branch`` intrinsic.
    """

    BRANCH = "branch"
    MATCH = "match"
    PE_INFO = "pe_info"
    PRINT_I64 = "print_i64"
    PRINT_F64 = "print_f64"
    PRINT_CHAR = "print_char"

    ALL = (BRANCH, MATCH, PE_INFO, PRINT_I64, PRINT_F64, PRINT_CHAR)


class Continuation(Def):
    """A function that never returns.

    The body is a single call: ``ops == (callee, *args)`` once set via
    :meth:`jump`.  Before that (or after :meth:`unset_body`), ``ops`` is
    empty and the continuation is a declaration.

    Continuations are nominal and mutable: transformation passes rewire
    bodies in place.  Parameters may be appended or removed **only during
    construction** (the frontend's on-the-fly SSA construction needs
    this); afterwards the parameter list is fixed.
    """

    __slots__ = ("params", "is_external", "intrinsic", "filter")

    def __init__(self, world: "World", fn_type: FnType, name: str, *,
                 intrinsic: str | None = None):
        super().__init__(world, fn_type, (), name)
        self.params: list[Param] = []
        for index, param_type in enumerate(fn_type.param_types):
            self.params.append(Param(world, param_type, self, index, f"{name}.{index}"))
        self.is_external = False
        self.intrinsic = intrinsic
        # Per-parameter partial-evaluation filter (True = force PE of the
        # argument at specializing call sites).  Mirrors Thorin's filters.
        self.filter: tuple[bool, ...] = ()

    # -- typed accessors ------------------------------------------------------

    @property
    def fn_type(self) -> FnType:
        assert isinstance(self.type, FnType)
        return self.type

    def param(self, index: int) -> Param:
        return self.params[index]

    @property
    def num_params(self) -> int:
        return len(self.params)

    # -- body ------------------------------------------------------------------

    def has_body(self) -> bool:
        return bool(self._ops)

    @property
    def callee(self) -> Def:
        assert self._ops, f"{self.unique_name()} has no body"
        return self._ops[0]

    @property
    def args(self) -> tuple[Def, ...]:
        assert self._ops, f"{self.unique_name()} has no body"
        return self._ops[1:]

    def arg(self, index: int) -> Def:
        return self._ops[1 + index]

    def jump(self, callee: Def, args: Iterable[Def]) -> None:
        """Set the body to ``callee(*args)``; replaces any previous body."""
        args = tuple(args)
        callee_type = callee.type
        assert isinstance(callee_type, FnType), (
            f"callee {callee.unique_name()} of {self.unique_name()} "
            f"is not fn-typed: {callee_type}"
        )
        if isinstance(callee, Continuation) and callee.intrinsic in (
            Intrinsic.MATCH,
        ):
            pass  # variadic intrinsic: arity checked by the verifier
        else:
            assert len(args) == callee_type.num_params, (
                f"arity mismatch jumping from {self.unique_name()} to "
                f"{callee.unique_name()}: {len(args)} args for {callee_type}"
            )
        self._set_ops((callee, *args))

    def unset_body(self) -> None:
        self._set_ops(())

    def update_callee(self, callee: Def) -> None:
        self._set_ops((callee, *self._ops[1:]))

    def update_arg(self, index: int, arg: Def) -> None:
        ops = list(self._ops)
        ops[1 + index] = arg
        self._set_ops(tuple(ops))

    # -- construction-time parameter surgery ------------------------------------

    def append_param(self, param_type: Type, name: str = "") -> Param:
        """Add a parameter (frontend SSA construction only).

        Callers are responsible for patching predecessor jumps; the
        continuation's fn type is updated in place.
        """
        from .types import fn_type as make_fn_type

        if self.world._undo is not None:
            self.world._undo._on_params(self)
        param = Param(self.world, param_type, self, len(self.params),
                      name or f"{self.name}.{len(self.params)}")
        self.params.append(param)
        self.type = make_fn_type(
            tuple(self.fn_type.param_types) + (param_type,))
        self.world._note_structural(self)
        return param

    def remove_param(self, index: int) -> None:
        """Remove an (unused) parameter; shifts the indices of later params."""
        if self.world._undo is not None:
            self.world._undo._on_params(self)
        param = self.params.pop(index)
        assert param.is_unused(), (
            f"removing used param {param.unique_name()} of {self.unique_name()}"
        )
        from .types import fn_type as make_fn_type

        for later in self.params[index:]:
            later.index -= 1
        param_types = [t for i, t in enumerate(self.fn_type.param_types) if i != index]
        self.type = make_fn_type(tuple(param_types))
        self.world._note_structural(self)

    # -- classification -----------------------------------------------------------

    def is_intrinsic(self) -> bool:
        return self.intrinsic is not None

    def is_returning(self) -> bool:
        """Does this continuation take a return continuation (a function)?"""
        return self.fn_type.is_returning()

    def is_basic_block_like(self) -> bool:
        """Order-1 type: all params are first-order values."""
        return self.fn_type.order() == 1

    def order(self) -> int:
        return self.fn_type.order()

"""Thorin's type system.

Types are immutable and *interned* (hash-consed): constructing the same
type twice yields the identical object, so type equality is identity.
This mirrors the paper's setting where the IR graph is globally value
numbered; types participate in the value numbering keys of primops.

The universe is deliberately small, following the paper:

* primitive types (``bool``, sized signed/unsigned integers, floats),
* function types ``fn(T1, ..., Tn)`` — continuations never return, so a
  function type has *no* return type,
* tuple types,
* pointer types,
* array types (definite length or indefinite),
* nominal struct types,
* ``mem`` — the state token threading side effects through the graph,
* ``frame`` — a stack frame produced by ``enter``.

The *order* of a type (see :func:`Type.order`) drives the control-flow
form (CFF) criterion: basic blocks have order-1 types, top-level
functions order-2 types.
"""

from __future__ import annotations

import enum
from typing import Iterator


class PrimTypeKind(enum.Enum):
    """Kinds of primitive (scalar) types."""

    BOOL = "bool"
    I8 = "i8"
    I16 = "i16"
    I32 = "i32"
    I64 = "i64"
    U8 = "u8"
    U16 = "u16"
    U32 = "u32"
    U64 = "u64"
    F32 = "f32"
    F64 = "f64"

    @property
    def is_int(self) -> bool:
        return self in _INT_KINDS

    @property
    def is_signed(self) -> bool:
        return self in _SIGNED_KINDS

    @property
    def is_unsigned(self) -> bool:
        return self in _UNSIGNED_KINDS

    @property
    def is_float(self) -> bool:
        return self in (PrimTypeKind.F32, PrimTypeKind.F64)

    @property
    def is_bool(self) -> bool:
        return self is PrimTypeKind.BOOL

    @property
    def bitwidth(self) -> int:
        return _BITWIDTHS[self]


_INT_KINDS = frozenset(
    {
        PrimTypeKind.I8,
        PrimTypeKind.I16,
        PrimTypeKind.I32,
        PrimTypeKind.I64,
        PrimTypeKind.U8,
        PrimTypeKind.U16,
        PrimTypeKind.U32,
        PrimTypeKind.U64,
    }
)

_SIGNED_KINDS = frozenset(
    {PrimTypeKind.I8, PrimTypeKind.I16, PrimTypeKind.I32, PrimTypeKind.I64}
)

_UNSIGNED_KINDS = frozenset(
    {PrimTypeKind.U8, PrimTypeKind.U16, PrimTypeKind.U32, PrimTypeKind.U64}
)

_BITWIDTHS = {
    PrimTypeKind.BOOL: 1,
    PrimTypeKind.I8: 8,
    PrimTypeKind.I16: 16,
    PrimTypeKind.I32: 32,
    PrimTypeKind.I64: 64,
    PrimTypeKind.U8: 8,
    PrimTypeKind.U16: 16,
    PrimTypeKind.U32: 32,
    PrimTypeKind.U64: 64,
    PrimTypeKind.F32: 32,
    PrimTypeKind.F64: 64,
}


class Type:
    """Base class of all interned types.

    Subclasses define ``_key()`` returning a hashable structural key;
    :meth:`Type.intern` guarantees one live instance per key.
    """

    _table: dict[tuple, "Type"] = {}

    __slots__ = ("_hash",)

    @classmethod
    def intern(cls, *key_parts) -> "Type":
        key = (cls, *key_parts)
        existing = Type._table.get(key)
        if existing is not None:
            return existing
        self = object.__new__(cls)
        self._init(*key_parts)
        self._hash = hash(key)
        Type._table[key] = self
        return self

    def _init(self, *key_parts) -> None:
        raise NotImplementedError

    def __hash__(self) -> int:
        return self._hash

    # Identity equality: interning makes structural equality == identity.
    def __eq__(self, other: object) -> bool:
        return self is other

    def __ne__(self, other: object) -> bool:
        return self is not other

    # -- structural queries -------------------------------------------------

    @property
    def elements(self) -> tuple["Type", ...]:
        """Component types (empty for leaf types)."""
        return ()

    def order(self) -> int:
        """Functional order of the type.

        ``order(prim) == 0``; ``order(fn(Ts)) == 1 + max(order(Ts))``;
        aggregates take the max of their components.  Basic blocks have
        order-1 types, returning functions order-2 types; anything higher
        needs closure elimination before code generation.
        """
        inner = max((t.order() for t in self.elements), default=0)
        if isinstance(self, FnType):
            return 1 + inner
        return inner

    def is_returning(self) -> bool:
        """True for fn types with at least one fn-typed ("return") param."""
        if not isinstance(self, FnType):
            return False
        return any(isinstance(t, FnType) for t in self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


class PrimType(Type):
    """A scalar type such as ``i32`` or ``f64``."""

    __slots__ = ("kind",)

    def _init(self, kind: PrimTypeKind) -> None:
        self.kind = kind

    @property
    def is_int(self) -> bool:
        return self.kind.is_int

    @property
    def is_signed(self) -> bool:
        return self.kind.is_signed

    @property
    def is_unsigned(self) -> bool:
        return self.kind.is_unsigned

    @property
    def is_float(self) -> bool:
        return self.kind.is_float

    @property
    def is_bool(self) -> bool:
        return self.kind.is_bool

    @property
    def bitwidth(self) -> int:
        return self.kind.bitwidth

    def __str__(self) -> str:
        return self.kind.value


class FnType(Type):
    """The type of a continuation: ``fn(T1, ..., Tn)``.

    Continuations do not return; calling one is a jump.  A "returning
    function" is encoded as a continuation whose last parameter is itself
    of ``FnType`` (the return continuation).
    """

    __slots__ = ("param_types",)

    def _init(self, param_types: tuple[Type, ...]) -> None:
        self.param_types = param_types

    @property
    def elements(self) -> tuple[Type, ...]:
        return self.param_types

    @property
    def num_params(self) -> int:
        return len(self.param_types)

    def ret_type(self) -> "FnType | None":
        """The last fn-typed parameter, i.e. the return continuation type."""
        for t in reversed(self.param_types):
            if isinstance(t, FnType):
                return t
        return None

    def is_basic_block(self) -> bool:
        """Order-1 fn type: parameters are all first-order values."""
        return self.order() == 1

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.param_types)
        return f"fn({inner})"


class TupleType(Type):
    """An anonymous product type ``(T1, ..., Tn)``."""

    __slots__ = ("elem_types",)

    def _init(self, elem_types: tuple[Type, ...]) -> None:
        self.elem_types = elem_types

    @property
    def elements(self) -> tuple[Type, ...]:
        return self.elem_types

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.elem_types)
        return f"({inner})"


class StructType(Type):
    """A nominal record type.

    Identity includes the name, so two structs with identical fields but
    different names are distinct types.
    """

    __slots__ = ("name", "field_names", "field_types")

    def _init(
        self,
        name: str,
        field_names: tuple[str, ...],
        field_types: tuple[Type, ...],
    ) -> None:
        self.name = name
        self.field_names = field_names
        self.field_types = field_types

    @property
    def elements(self) -> tuple[Type, ...]:
        return self.field_types

    def field_index(self, name: str) -> int:
        return self.field_names.index(name)

    def __str__(self) -> str:
        return f"struct {self.name}"


class PtrType(Type):
    """A pointer to a value of the pointee type."""

    __slots__ = ("pointee",)

    def _init(self, pointee: Type) -> None:
        self.pointee = pointee

    @property
    def elements(self) -> tuple[Type, ...]:
        return (self.pointee,)

    def __str__(self) -> str:
        return f"ptr[{self.pointee}]"


class DefiniteArrayType(Type):
    """An array with a statically known length."""

    __slots__ = ("elem_type", "length")

    def _init(self, elem_type: Type, length: int) -> None:
        self.elem_type = elem_type
        self.length = length

    @property
    def elements(self) -> tuple[Type, ...]:
        return (self.elem_type,)

    def __str__(self) -> str:
        return f"[{self.elem_type} * {self.length}]"


class IndefiniteArrayType(Type):
    """An array whose length is only known at run time."""

    __slots__ = ("elem_type",)

    def _init(self, elem_type: Type) -> None:
        self.elem_type = elem_type

    @property
    def elements(self) -> tuple[Type, ...]:
        return (self.elem_type,)

    def __str__(self) -> str:
        return f"[{self.elem_type}]"


class MemType(Type):
    """The linear state token threading memory effects through the graph."""

    __slots__ = ()

    def _init(self) -> None:
        pass

    def __str__(self) -> str:
        return "mem"


class FrameType(Type):
    """A stack frame, produced by ``enter`` and consumed by ``slot``."""

    __slots__ = ()

    def _init(self) -> None:
        pass

    def __str__(self) -> str:
        return "frame"


# ---------------------------------------------------------------------------
# Convenience constructors.  These are the public API for building types.
# ---------------------------------------------------------------------------


def prim_type(kind: PrimTypeKind | str) -> PrimType:
    if isinstance(kind, str):
        kind = PrimTypeKind(kind)
    return PrimType.intern(kind)  # type: ignore[return-value]


def fn_type(param_types: Iterator[Type] | tuple[Type, ...] | list[Type]) -> FnType:
    return FnType.intern(tuple(param_types))  # type: ignore[return-value]


def tuple_type(elem_types) -> TupleType:
    return TupleType.intern(tuple(elem_types))  # type: ignore[return-value]


def struct_type(name: str, field_names, field_types) -> StructType:
    return StructType.intern(name, tuple(field_names), tuple(field_types))


def ptr_type(pointee: Type) -> PtrType:
    return PtrType.intern(pointee)  # type: ignore[return-value]


def definite_array_type(elem_type: Type, length: int) -> DefiniteArrayType:
    return DefiniteArrayType.intern(elem_type, length)


def indefinite_array_type(elem_type: Type) -> IndefiniteArrayType:
    return IndefiniteArrayType.intern(elem_type)


def mem_type() -> MemType:
    return MemType.intern()  # type: ignore[return-value]


def frame_type() -> FrameType:
    return FrameType.intern()  # type: ignore[return-value]


# Frequently used shorthands.
BOOL = prim_type(PrimTypeKind.BOOL)
I8 = prim_type(PrimTypeKind.I8)
I16 = prim_type(PrimTypeKind.I16)
I32 = prim_type(PrimTypeKind.I32)
I64 = prim_type(PrimTypeKind.I64)
U8 = prim_type(PrimTypeKind.U8)
U16 = prim_type(PrimTypeKind.U16)
U32 = prim_type(PrimTypeKind.U32)
U64 = prim_type(PrimTypeKind.U64)
F32 = prim_type(PrimTypeKind.F32)
F64 = prim_type(PrimTypeKind.F64)
MEM = mem_type()
FRAME = frame_type()
UNIT = tuple_type(())

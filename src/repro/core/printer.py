"""Textual and GraphViz dumps of the IR.

Two text modes:

* :func:`print_scope` / :func:`print_world` — structural dump: one
  paragraph per continuation, primops listed in dependency order before
  the jump that (transitively) uses them.  This is what tests golden-match
  against.
* :func:`to_dot` — GraphViz export of the dependence graph, handy for
  eyeballing scopes and mangling results.
"""

from __future__ import annotations

import io

from .defs import Continuation, Def, Param
from .primops import Bottom, Literal, PrimOp
from .scope import Scope


def def_ref(d: Def) -> str:
    """A short reference to *d* for use inside operand lists."""
    if isinstance(d, Literal):
        return f"{d.prim_type}:{d.public_value()}"
    if isinstance(d, Bottom):
        return f"bot[{d.type}]"
    return d.unique_name()


def _primop_line(op: PrimOp) -> str:
    operands = ", ".join(def_ref(o) for o in op.ops)
    extra = ""
    attrs = op.attrs()
    if attrs and not isinstance(op, Literal):
        extra = " {" + ", ".join(str(getattr(a, "value", a)) for a in attrs) + "}"
    return f"    {op.unique_name()}: {op.type} = {op.op_name()}({operands}){extra}"


def _scope_primops_in_order(scope: Scope) -> list[PrimOp]:
    """All primops of the scope, topologically sorted (operands first)."""
    order: list[PrimOp] = []
    visited: set[Def] = set()

    def visit(d: Def) -> None:
        if d in visited or not isinstance(d, PrimOp) or d not in scope:
            return
        visited.add(d)
        for op in d.ops:
            visit(op)
        order.append(d)

    for cont in scope.continuations():
        if cont.has_body():
            for op in cont.ops:
                visit(op)
    # Scope may contain primops only referenced by *other* primops that
    # are dead; include them for completeness, after the live ones.
    for d in scope.defs():
        visit(d)
    return order


def print_continuation_header(cont: Continuation) -> str:
    params = ", ".join(f"{p.unique_name()}: {p.type}" for p in cont.params)
    flags = []
    if cont.is_external:
        flags.append("extern")
    if cont.is_intrinsic():
        flags.append("intrinsic")
    prefix = (" ".join(flags) + " ") if flags else ""
    return f"{prefix}fn {cont.unique_name()}({params})"


def print_scope(scope: Scope, *, include_primops: bool = True) -> str:
    out = io.StringIO()
    primops = _scope_primops_in_order(scope) if include_primops else []
    for cont in scope.continuations():
        out.write(print_continuation_header(cont))
        if not cont.has_body():
            out.write(" = <no body>\n")
            continue
        out.write(":\n")
        if include_primops and cont is scope.entry:
            for op in primops:
                out.write(_primop_line(op) + "\n")
        args = ", ".join(def_ref(a) for a in cont.args)
        out.write(f"    jump {def_ref(cont.callee)}({args})\n")
    return out.getvalue()


def print_world(world) -> str:
    from .scope import top_level_continuations

    out = io.StringIO()
    out.write(f"// world '{world.name}': {world.num_primops()} primops\n")
    for cont in top_level_continuations(world):
        out.write("\n")
        out.write(print_scope(Scope(cont)))
    return out.getvalue()


def to_dot(scope: Scope) -> str:
    """GraphViz dot of the scope's dependence graph."""
    out = io.StringIO()
    out.write(f'digraph "{scope.entry.unique_name()}" {{\n')
    out.write("  rankdir=TB;\n")

    def node_id(d: Def) -> str:
        return f"n{d.gid}"

    emitted: set[Def] = set()

    def emit_node(d: Def) -> None:
        if d in emitted:
            return
        emitted.add(d)
        if isinstance(d, Continuation):
            shape, label = "box", f"fn {d.unique_name()}"
        elif isinstance(d, Param):
            shape, label = "ellipse", d.unique_name()
        elif isinstance(d, Literal):
            shape, label = "plaintext", def_ref(d)
        else:
            shape, label = "oval", f"{d.op_name() if isinstance(d, PrimOp) else '?'} {d.unique_name()}"
        style = ' style=filled fillcolor=lightgrey' if d not in scope else ""
        out.write(f'  {node_id(d)} [shape={shape} label="{label}"{style}];\n')

    for d in scope.defs():
        emit_node(d)
        for index, op in enumerate(d.ops):
            emit_node(op)
            out.write(f"  {node_id(d)} -> {node_id(op)} [label={index}];\n")
        if isinstance(d, Param):
            emit_node(d.continuation)
            out.write(
                f"  {node_id(d)} -> {node_id(d.continuation)} [style=dotted];\n"
            )
    out.write("}\n")
    return out.getvalue()


__all__ = [
    "def_ref",
    "print_scope",
    "print_world",
    "print_continuation_header",
    "to_dot",
]

#!/usr/bin/env python3
"""Quickstart: compile, inspect, optimize and run a program.

Three levels of the API in one tour:

1. the one-liner: source → optimized world → result;
2. looking inside: print the graph IR, check control-flow form;
3. building IR *by hand* with the World API and specializing it with
   the mangler (the paper's lambda mangling).
"""

from repro import compile_source, run_function
from repro.core import types as ct
from repro.core.printer import print_world
from repro.core.scope import Scope
from repro.core.verify import is_cff
from repro.core.world import World
from repro.backend.interp import Interpreter
from repro.transform.mangle import drop


def part1_compile_and_run() -> None:
    print("== 1. compile & run =========================================")
    source = """
fn gcd(a: i64, b: i64) -> i64 {
    let mut x = a;
    let mut y = b;
    while y != 0 {
        let t = y;
        y = x % y;
        x = t;
    }
    x
}
fn main(a: i64, b: i64) -> i64 { gcd(a, b) }
"""
    world = compile_source(source)
    print("gcd(252, 105) =", run_function(world, "main", 252, 105))
    print("gcd(981, 1234) =", run_function(world, "main", 981, 1234))


def part2_inspect_the_graph() -> None:
    print("\n== 2. the graph IR =========================================")
    source = """
fn main(n: i64) -> i64 {
    let mut acc = 1;
    for i in 1..(n + 1) { acc *= i; }
    acc
}
"""
    world = compile_source(source)
    print(print_world(world))
    print("control-flow form reached:", is_cff(world))
    print("factorial(10) =", run_function(world, "main", 10))


def part3_worlds_and_mangling() -> None:
    print("\n== 3. hand-built IR + lambda mangling ======================")
    world = World("demo")

    # fn power(mem, x, n, ret):  ret(mem, x^n)  — built directly.
    ret_t = ct.fn_type((ct.MEM, ct.I64))
    power = world.continuation(
        ct.fn_type((ct.MEM, ct.I64, ct.I64, ret_t)), "power"
    )
    world.make_external(power)
    mem, x, n, ret = power.params

    base = world.basic_block((ct.MEM,), "base")
    recur = world.basic_block((ct.MEM,), "recur")
    world.jump(power, world.branch(),
               (mem, world.eq(n, world.zero(ct.I64)), base, recur))
    world.jump(base, ret, (base.params[0], world.one(ct.I64)))
    k = world.continuation(ret_t, "k")
    world.jump(recur, power,
               (recur.params[0], x, world.sub(n, world.one(ct.I64)), k))
    world.jump(k, ret, (k.params[0], world.mul(x, k.params[1])))

    print("power(2, 10) =", Interpreter(world).call("power", 2, 10))

    # Specialize the exponent away: drop n := 8.  Folding re-fires in
    # the copy and the branch on n == 0 disappears level by level.
    power8 = drop(Scope(power), {n: world.literal(ct.I64, 8)})
    power8.name = "power8"
    world.make_external(power8)
    print("specialized signature:", [str(p.type) for p in power8.params])
    print("power8(3) =", Interpreter(world).call("power8", 3))


if __name__ == "__main__":
    part1_compile_and_run()
    part2_inspect_the_graph()
    part3_worlds_and_mangling()

#!/usr/bin/env python3
"""A tour of the compiler pipeline, pass by pass — Thorin vs. classical SSA.

Compiles one program through both compilers in this repository:

* the Thorin pipeline: graph construction → partial evaluation →
  closure elimination → inlining → lambda dropping → cleanup →
  schedule → bytecode;
* the classical SSA baseline: CFG construction → constant folding →
  SimplifyCFG (with phi repair) → inlining → DCE → bytecode;

and prints what each stage did, ending with both binaries producing
identical results on the shared VM — plus the T3 story in miniature:
the structural repair work each IR needed.
"""

from repro import compile_source
from repro.backend.codegen import compile_world
from repro.baselines.ssa import CompiledSSA, compile_source_ssa, print_module
from repro.baselines.ssa.builder import lower_module
from repro.core.printer import print_world
from repro.eval import collect_world_stats
from repro.frontend import compile_to_ast
from repro.transform.cleanup import cleanup
from repro.transform.closure_elim import eliminate_closures
from repro.transform.inliner import inline_small_functions
from repro.transform.lambda_dropping import drop_invariant_params
from repro.transform.partial_eval import partial_eval

SOURCE = """
fn sum_range(lo: i64, hi: i64, f: fn(i64) -> i64) -> i64 {
    let mut acc = 0;
    for i in lo..hi { acc += f(i); }
    acc
}

fn main(n: i64) -> i64 {
    let squares = sum_range(0, n, |i: i64| i * i);
    let cubes = sum_range(0, n, |i: i64| i * i * i);
    squares + cubes
}
"""


def thorin_pipeline():
    print("=" * 68)
    print("Thorin pipeline")
    print("=" * 68)
    world = compile_source(SOURCE, optimize=False)
    print("\n-- after construction (higher-order: sum_range + 2 lambdas) --")
    s = collect_world_stats(world)
    print(f"continuations={s.continuations} primops={s.primops} "
          f"ho_params={s.higher_order_params}")

    for name, pass_fn in [
        ("partial_eval", partial_eval),
        ("closure_elim", eliminate_closures),
        ("inline", inline_small_functions),
        ("lambda_drop", drop_invariant_params),
    ]:
        result = pass_fn(world)
        cleaned = cleanup(world)
        s = collect_world_stats(world)
        print(f"-- {name}: {result} | cleanup: {cleaned}")
        print(f"   continuations={s.continuations} primops={s.primops} "
              f"ho_params={s.higher_order_params} "
              f"cff_violations={s.cff_violations}")

    # a couple more rounds to the fixed point
    for _ in range(3):
        work = (eliminate_closures(world).get("mangled", 0)
                + inline_small_functions(world).get("inlined", 0)
                + drop_invariant_params(world).get("dropped", 0))
        cleanup(world)
        if not work:
            break

    print("\n-- final graph --")
    print(print_world(world))
    return world


def ssa_pipeline():
    print("=" * 68)
    print("classical SSA baseline (first-order subset)")
    print("=" * 68)
    # The baseline has no closures: give it the hand-specialized version.
    first_order = """
fn sum_squares(n: i64) -> i64 {
    let mut acc = 0;
    for i in 0..n { acc += i * i; }
    acc
}
fn sum_cubes(n: i64) -> i64 {
    let mut acc = 0;
    for i in 0..n { acc += i * i * i; }
    acc
}
fn main(n: i64) -> i64 { sum_squares(n) + sum_cubes(n) }
"""
    stats_out = []
    module = compile_source_ssa(first_order, stats_out=stats_out)
    stats = stats_out[0]
    print(f"phi_repairs={stats.phi_repairs} phis_placed={stats.phis_placed} "
          f"values_remapped={stats.values_remapped} "
          f"inlined={stats.inlined_calls}")
    print(f"=> total structural bookkeeping: {stats.total_bookkeeping()} "
          f"(Thorin's mangler: 0, structurally)")
    print("\n-- final SSA --")
    print(print_module(module))
    return module


def main() -> None:
    world = thorin_pipeline()
    module = ssa_pipeline()

    print("=" * 68)
    print("both binaries on the shared VM")
    print("=" * 68)
    thorin_bin = compile_world(world)
    ssa_bin = CompiledSSA(module)
    for n in (10, 100, 1000):
        a = thorin_bin.call("main", n)
        b = ssa_bin.call("main", n)
        marker = "OK" if a == b else "MISMATCH"
        print(f"main({n}): thorin={a} ssa={b} {marker}")
        assert a == b


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Domain example: generic stencils specialized per kernel.

The motivating domain of the paper's follow-up work (AnyDSL/Impala):
write ONE generic filter over an abstract kernel (a higher-order
function), instantiate it with concrete kernels, and let closure
elimination + partial evaluation produce straight-line first-order
code per instance — no closures, no indirect calls, kernel weights
folded into the code.

This script compiles a generic separable blur and a sharpen filter
from the same generic `convolve1d`, proves both reach control-flow
form, runs them on the bytecode VM, and shows the specialization
payoff in retired VM instructions.
"""

from repro import compile_source
from repro.backend import bytecode as bc
from repro.backend.codegen import compile_world
from repro.core.verify import cff_violations
from repro.eval import collect_world_stats

SOURCE = """
// One generic 1D convolution: kernel abstracted as fn(i64) -> f64.
fn convolve1d(src: &[f64], dst: &[f64], n: i64, radius: i64,
              weight: fn(i64) -> f64) -> () {
    for i in 0..n {
        let mut acc = 0.0;
        for k in (0 - radius)..(radius + 1) {
            let mut idx = i + k;
            if idx < 0 { idx = 0; }
            if idx >= n { idx = n - 1; }
            acc += src[idx] * weight(k);
        }
        dst[i] = acc;
    }
}

fn fill(buf: &[f64], n: i64) -> () {
    for i in 0..n {
        buf[i] = (((i * 37 + 11) % 256) as f64) / 255.0;
    }
}

fn checksum(buf: &[f64], n: i64) -> f64 {
    let mut s = 0.0;
    for i in 0..n { s += buf[i] * (((i % 7) + 1) as f64); }
    s
}

extern fn blur(n: i64) -> f64 {
    let src = new_buf_f64(n);
    let dst = new_buf_f64(n);
    fill(src, n);
    // binomial 5-tap kernel: 1 4 6 4 1 (normalized)
    let w = |k: i64| -> f64 {
        if k == 0 { 0.375 }
        else if k == 1 || k == 0 - 1 { 0.25 }
        else { 0.0625 }
    };
    @convolve1d(src, dst, n, 2, w);
    checksum(dst, n)
}

extern fn sharpen(n: i64) -> f64 {
    let src = new_buf_f64(n);
    let dst = new_buf_f64(n);
    fill(src, n);
    // 3-tap sharpen: -1 3 -1
    let w = |k: i64| -> f64 { if k == 0 { 3.0 } else { 0.0 - 1.0 } };
    @convolve1d(src, dst, n, 1, w);
    checksum(dst, n)
}

fn main(n: i64) -> f64 { blur(n) + sharpen(n) }
"""


def main() -> None:
    world = compile_source(SOURCE)

    violations = cff_violations(world)
    stats = collect_world_stats(world)
    print("generic filter instantiated twice from one definition")
    print(f"  closures remaining:        {stats.closure_continuations}")
    print(f"  higher-order params left:  {stats.higher_order_params}")
    print(f"  CFF violations:            {len(violations)}")
    assert not violations, violations

    compiled = compile_world(world)
    n = 512
    print(f"\nrunning on the bytecode VM (n = {n}):")
    print(f"  blur({n})    = {compiled.call('blur', n):.6f}")
    print(f"  sharpen({n}) = {compiled.call('sharpen', n):.6f}")

    # Show what specialization bought: the kernel lambdas are gone, the
    # weights are immediates in the loop body.
    vm = bc.VM(compiled.program)
    vm.call(compiled.program, "blur", n)
    specialized = vm.executed

    dynamic_world = compile_source(SOURCE.replace("@", ""))
    dyn = compile_world(dynamic_world)
    vm2 = bc.VM(dyn.program)
    vm2.call(dyn.program, "blur", n)
    print(f"\nretired VM instructions for blur({n}):")
    print(f"  with @specialization:    {specialized}")
    print(f"  without markers:         {vm2.executed}")
    print("  (identical here: closure elimination alone already burns the")
    print("   kernel into the filter — the paper's point that reaching")
    print("   first-order code does not *depend* on annotations; @ pays")
    print("   off when static scalars drive recursion, cf. examples/")
    print("   partial_evaluation.py)")


if __name__ == "__main__":
    main()

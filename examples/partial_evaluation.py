#!/usr/bin/env python3
"""Partial evaluation with run/hlt markers — the pow story end to end.

Shows the three behaviours of the online evaluator:

* ``@pow(x, 13)`` — the exponent is static: the recursion unfolds at
  compile time into a straight multiply chain (square-and-multiply);
* ``pow(x, n)`` with a dynamic ``n`` — nothing to specialize, the
  residual program keeps the loop;
* ``$`` (hlt) — an explicit "do not touch" marker that stops the
  evaluator even where it could specialize.
"""

from repro import compile_source
from repro.backend.codegen import compile_world
from repro.core.printer import print_scope
from repro.core.scope import Scope

SOURCE = """
fn pow(x: i64, n: i64) -> i64 {
    if n == 0 { 1 }
    else if n % 2 == 0 { let h = pow(x, n / 2); h * h }
    else { x * pow(x, n - 1) }
}

extern fn pow13_static(x: i64) -> i64 { @pow(x, 13) }
extern fn pow_dynamic(x: i64, n: i64) -> i64 { pow(x, n) }
extern fn pow13_halted(x: i64) -> i64 { $pow(x, 13) }

fn main(x: i64) -> i64 { pow13_static(x) }
"""


def count_ops(world, name: str) -> dict[str, int]:
    from repro.core.primops import PrimOp

    scope = Scope(world.find_external(name))
    counts: dict[str, int] = {}
    for d in scope.defs():
        if isinstance(d, PrimOp):
            counts[d.op_name()] = counts.get(d.op_name(), 0) + 1
    return counts


def main() -> None:
    world = compile_source(SOURCE)

    print("== residual code for @pow(x, 13) (static exponent) ==")
    print(print_scope(Scope(world.find_external("pow13_static"))))
    static_ops = count_ops(world, "pow13_static")
    print("op census:", static_ops)
    muls = static_ops.get("mul", 0)
    print(f"-> {muls} multiplies, no branches, no calls "
          f"(square-and-multiply for 13 = 0b1101)")

    print("\n== residual code for pow(x, n) (dynamic exponent) ==")
    dynamic_scope = Scope(world.find_external("pow_dynamic"))
    dyn_conts = len(dynamic_scope.continuations())
    print(f"stays a real function: {dyn_conts} continuations "
          f"(branches and recursion intact)")

    compiled = compile_world(world)
    x = 3
    expected = x ** 13
    for fn in ("pow13_static", "pow_dynamic", "pow13_halted"):
        args = (x, 13) if fn == "pow_dynamic" else (x,)
        got = compiled.call(fn, *args)
        print(f"{fn}{args} = {got}  {'OK' if got == expected else 'WRONG'}")
        assert got == expected

    # Cost on the machine: retired instructions per variant.
    from repro.backend import bytecode as bc

    print("\nretired VM instructions:")
    for fn in ("pow13_static", "pow_dynamic", "pow13_halted"):
        args = (3, 13) if fn == "pow_dynamic" else (3,)
        param_types, _ = compiled.fn_types[fn]
        vm = bc.VM(compiled.program)
        vm.call(compiled.program, fn, *[a for a in args])
        print(f"  {fn:16s} {vm.executed}")


if __name__ == "__main__":
    main()

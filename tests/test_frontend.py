"""Frontend tests: lexer, parser, sema diagnostics, SSA construction."""

import pytest

from repro.core import types as ct
from repro.frontend import compile_to_ast, compile_source
from repro.frontend.errors import LexError, ParseError, TypeError_
from repro.frontend.lexer import TokKind, tokenize
from repro.frontend.parser import parse
from repro.frontend import ast


class TestLexer:
    def test_keywords_vs_idents(self):
        toks = tokenize("fn foo let letx mut")
        kinds = [(t.kind, t.text) for t in toks[:-1]]
        assert kinds == [
            (TokKind.KEYWORD, "fn"), (TokKind.IDENT, "foo"),
            (TokKind.KEYWORD, "let"), (TokKind.IDENT, "letx"),
            (TokKind.KEYWORD, "mut"),
        ]

    def test_numbers(self):
        toks = tokenize("42 1_000 0xff 3.14 1e3 2.5f32 7i32 255u8")
        values = [t.value for t in toks[:-1]]
        assert values == [(42, None), (1000, None), (255, None),
                          (3.14, None), (1000.0, None), (2.5, "f32"),
                          (7, "i32"), (255, "u8")]

    def test_range_vs_float(self):
        toks = tokenize("0..10")
        assert [t.text for t in toks[:-1]] == ["0", "..", "10"]

    def test_comments_skipped(self):
        toks = tokenize("a // comment\n /* block\n comment */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_multichar_operators(self):
        toks = tokenize("<<= >>= == != <= >= && || -> .. += <<")
        assert [t.text for t in toks[:-1]] == [
            "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "->",
            "..", "+=", "<<",
        ]

    def test_errors(self):
        with pytest.raises(LexError):
            tokenize("let x = `")
        with pytest.raises(LexError):
            tokenize("1.5q")
        with pytest.raises(LexError):
            tokenize("/* unterminated")


class TestParser:
    def test_precedence(self):
        m = parse("fn f() -> i64 { 1 + 2 * 3 }")
        expr = m.functions[0].body.result
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_comparison_binds_looser_than_arith(self):
        m = parse("fn f(a: i64) -> bool { a + 1 < a * 2 }")
        expr = m.functions[0].body.result
        assert expr.op == "<"

    def test_block_result_vs_stmt(self):
        m = parse("fn f() -> i64 { let x = 1; x }")
        body = m.functions[0].body
        assert len(body.stmts) == 1 and body.result is not None

    def test_else_if_chain(self):
        m = parse("fn f(a: i64) -> i64 { if a < 0 { 0 } else if a > 9 { 9 } else { a } }")
        expr = m.functions[0].body.result
        assert isinstance(expr.else_block, ast.IfExpr)

    def test_lambda_forms(self):
        m = parse("fn f() -> i64 { let g = |x: i64| x + 1; let h = || 9; g(1) + h() }")
        lets = [s for s in m.functions[0].body.stmts]
        assert isinstance(lets[0].init, ast.Lambda)
        assert isinstance(lets[1].init, ast.Lambda)
        assert lets[1].init.params == []

    def test_pe_markers(self):
        m = parse("fn f(x: i64) -> i64 { @g(x) + $h(x) }")
        expr = m.functions[0].body.result
        assert expr.lhs.pe_mode == "run"
        assert expr.rhs.pe_mode == "hlt"

    def test_types(self):
        m = parse("fn f(a: [i64; 4], b: &[f64], c: (i64, bool), "
                  "d: fn(i64) -> i64) -> () { }")
        params = m.functions[0].params
        assert isinstance(params[0].type_expr, ast.ArrayTypeExpr)
        assert isinstance(params[1].type_expr, ast.BufTypeExpr)
        assert isinstance(params[2].type_expr, ast.TupleTypeExpr)
        assert isinstance(params[3].type_expr, ast.FnTypeExpr)

    def test_parse_errors(self):
        for bad in ["fn", "fn f( { }", "fn f() -> { }", "fn f() { let = 3; }",
                    "fn f() { 1 + ; }", "fn f() { a[1; }"]:
            with pytest.raises(ParseError):
                parse(bad)


class TestSema:
    def test_literal_adaptation(self):
        m = compile_to_ast("fn f() -> i32 { let x: i32 = 5; x + 1 }")
        assert m.functions[0].body.result.type is ct.I32

    def test_type_errors(self):
        cases = [
            "fn f() -> i64 { 1.5 }",                      # float vs int
            "fn f() -> i64 { true + 1 }",                 # bool arith
            "fn f(x: i64) -> i64 { x + 1.0 }",            # mixed types
            "fn f(x: i64) -> i64 { y }",                  # unknown name
            "fn f(x: i64) -> i64 { x = 3; x }",           # param not mut
            "fn f() -> i64 { break; 0 }",                 # break outside loop
            "fn f() -> i64 { if true { 1 } }",            # if without else value
            "fn f() -> i64 { f(1, 2) }",                  # arity
            "fn f() -> i64 { 1 % 2.0 }",                  # int-only op
            "fn f() -> bool { 1 < true }",                # cmp mismatch
            "fn f() { return 1; }",                       # unit fn returns value
            "fn f() -> i64 { let t = (1, 2); t.5 }",      # tuple index range
            "fn f() -> i64 { print_i64 }",                # builtin as value
            "fn f() -> i64 { 0 } fn f() -> i64 { 1 }",    # duplicate
        ]
        for source in cases:
            with pytest.raises(TypeError_):
                compile_to_ast(source)

    def test_capture_rules(self):
        with pytest.raises(TypeError_):
            compile_to_ast("""
fn f() -> i64 {
    let mut a = 1;
    let g = |x: i64| x + a;
    g(1)
}
""")
        # immutable capture is fine
        compile_to_ast("""
fn f() -> i64 {
    let a = 1;
    let g = |x: i64| x + a;
    g(1)
}
""")

    def test_shadowing_allowed(self):
        m = compile_to_ast("""
fn f() -> i64 {
    let x = 1;
    let x = x + 1;
    x
}
""")
        assert m is not None

    def test_unit_return_spellings(self):
        compile_to_ast("fn a() { } fn b() -> () { } fn c() { a(); b(); }")


class TestSSAConstruction:
    def _main(self, source):
        world = compile_source(source, optimize=False)
        return world.find_external("main"), world

    def test_loop_gets_minimal_phis(self):
        main, world = self._main("""
fn main(n: i64) -> i64 {
    let mut i = 0;
    let unchanged = 5;
    while i < n { i += unchanged; }
    i
}
""")
        from repro.core.scope import Scope

        heads = [c for c in Scope(main).continuations()
                 if c.name.startswith("while_head")]
        assert len(heads) == 1
        # phis: i and mem only — `unchanged` must not become a param
        assert heads[0].num_params == 2

    def test_single_pred_blocks_have_no_phis(self):
        main, world = self._main("""
fn main(a: i64) -> i64 {
    if a > 0 { a * 2 } else { a * 3 }
}
""")
        from repro.core.scope import Scope

        for cont in Scope(main).continuations():
            if cont.name.startswith("if_then") or cont.name.startswith("if_else"):
                assert cont.num_params == 1  # just mem

    def test_join_carries_value_phi(self):
        main, world = self._main("""
fn main(a: i64) -> i64 {
    let v = if a > 0 { a } else { 0 - a };
    v + 1
}
""")
        from repro.core.scope import Scope

        joins = [c for c in Scope(main).continuations()
                 if c.name.startswith("if_join")]
        # the selected value plus mem (branch targets re-thread memory)
        assert joins and joins[0].num_params == 2
        param_types = {str(p.type) for p in joins[0].params}
        assert param_types == {"i64", "mem"}

    def test_direct_join_without_mem(self):
        # A value join reached by *direct* jumps (shortcut evaluation)
        # has no branch targets in between: mem is not re-threaded and
        # only the value phi remains.
        main, world = self._main("""
fn main(a: i64, b: i64) -> i64 {
    if a > 0 && b > 0 { 1 } else { 2 }
}
""")
        from repro.core.scope import Scope

        joins = [c for c in Scope(main).continuations()
                 if c.name.startswith("shortcut_join")]
        assert joins
        # bool value + mem: the shortcut arms pass through branch
        # targets as well, so mem is re-threaded here too — but the
        # *if* join that consumes the bool gets a single value phi.
        assert joins[0].num_params == 2

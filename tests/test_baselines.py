"""Unit tests for the SSA and nested-CPS baseline compilers."""

import pytest

from repro.backend.interp import Interpreter
from repro import compile_source
from repro.baselines.ssa import (
    BaselineError,
    CompiledSSA,
    compile_source_ssa,
    print_module,
)
from repro.baselines.ssa.ir import Opcode, Phi
from repro.baselines.nested_cps import (
    cps_convert_expr,
    count_nodes,
    evaluate,
    free_vars,
    inline_function,
    pretty,
)
from repro.core import fold


def run_ssa(source, *args, optimize=True, entry="main"):
    return CompiledSSA(compile_source_ssa(source, optimize=optimize)).call(
        entry, *args
    )


class TestSSABuilder:
    def test_simple(self):
        assert run_ssa("fn main(a: i64) -> i64 { a * 2 + 1 }", 20) == 41

    def test_loops_and_phis(self):
        src = """
fn main(n: i64) -> i64 {
    let mut a = 0;
    let mut b = 1;
    for i in 0..n {
        let t = a + b;
        a = b;
        b = t;
    }
    a
}
"""
        assert run_ssa(src, 10) == 55

    def test_minimal_phi_count(self):
        module = compile_source_ssa("""
fn main(n: i64) -> i64 {
    let mut i = 0;
    let constant = 7;
    while i < n { i += constant; }
    i
}
""", optimize=False)
        fn = module.functions["main"]
        phis = [p for b in fn.blocks for p in b.phis]
        assert len(phis) == 1  # only i merges; `constant` must not

    def test_closures_rejected(self):
        with pytest.raises(BaselineError):
            compile_source_ssa(
                "fn main() -> i64 { let f = |x: i64| x; f(1) }"
            )

    def test_function_values_rejected(self):
        with pytest.raises(BaselineError):
            compile_source_ssa("""
fn g(x: i64) -> i64 { x }
fn main() -> i64 { let h = g; 0 }
""")

    def test_printer(self):
        module = compile_source_ssa("fn main(a: i64) -> i64 { a + 1 }",
                                    optimize=False)
        text = print_module(module)
        assert "fn main" in text and "ret" in text


class TestSSAPasses:
    def test_constant_fold_and_branch_fold(self):
        stats_out = []
        module = compile_source_ssa("""
fn main() -> i64 {
    let x = 2 + 3;
    if x > 4 { x * 10 } else { 0 }
}
""", stats_out=stats_out)
        assert stats_out[0].folded >= 1
        assert CompiledSSA(module).call("main") == 50

    def test_jump_threading_repairs_phis(self):
        stats_out = []
        compile_source_ssa("""
fn main(a: i64, b: i64) -> i64 {
    let v = if a > 0 { a } else { b };
    v + 1
}
""", stats_out=stats_out)
        assert stats_out[0].total_bookkeeping() > 0

    def test_inlining_preserves_semantics(self):
        src = """
fn square(x: i64) -> i64 { x * x }
fn main(a: i64) -> i64 { square(a) + square(a + 1) }
"""
        assert run_ssa(src, 4) == run_ssa(src, 4, optimize=False) == 41

    def test_optimized_matches_thorin(self):
        src = """
fn gcd(a: i64, b: i64) -> i64 {
    let mut x = a;
    let mut y = b;
    while y != 0 { let t = y; y = x % y; x = t; }
    x
}
fn main(a: i64, b: i64) -> i64 { gcd(a, b) }
"""
        thorin = Interpreter(compile_source(src)).call("main", 252, 105)
        assert run_ssa(src, 252, 105) == thorin == 21


class TestNestedCPS:
    FIB = ("letfun", "fib", ["n"],
           ("if", ("<", "n", 2), "n",
            ("+", ("call", "fib", ("-", "n", 1)),
                  ("call", "fib", ("-", "n", 2)))),
           ("call", "fib", 10))

    def test_convert_and_evaluate(self):
        term = cps_convert_expr(self.FIB)
        assert fold.to_signed(evaluate(term), 64) == 55

    def test_if_and_arith(self):
        term = cps_convert_expr(("if", ("<", 3, 5), ("*", 6, 7), 0))
        assert evaluate(term) == 42

    def test_free_vars(self):
        term = cps_convert_expr(("+", "x", 1))
        assert "x" in free_vars(term)

    def test_inline_preserves_semantics_and_counts_renames(self):
        term = cps_convert_expr(self.FIB)
        inlined, stats = inline_function(term, "fib")
        assert fold.to_signed(evaluate(inlined), 64) == 55
        assert stats.alpha_renames > 0
        assert stats.substitutions > 0
        assert count_nodes(inlined) > count_nodes(term)

    def test_pretty_prints(self):
        text = pretty(cps_convert_expr(self.FIB))
        assert "letfun fib" in text
        assert "halt" in text

    def test_division_trap(self):
        from repro.baselines.nested_cps.interp import CPSRuntimeError

        term = cps_convert_expr(("/", 1, 0))
        with pytest.raises(CPSRuntimeError):
            evaluate(term)


class TestEvalStats:
    def test_source_loc(self):
        from repro.eval import source_loc

        assert source_loc("// comment\n\nfn f() {}\n  // x\ncode\n") == 2

    def test_world_stats_fields(self):
        from repro.eval import collect_world_stats

        world = compile_source("""
fn apply(f: fn(i64) -> i64, x: i64) -> i64 { f(x) }
fn main(a: i64) -> i64 { apply(|v: i64| v + 1, a) }
""", optimize=False)
        stats = collect_world_stats(world)
        assert stats.higher_order_params >= 1
        assert stats.continuations > 0
        report = stats.as_dict()
        assert set(report) == set(stats.FIELDS)
        after = collect_world_stats(compile_source("""
fn apply(f: fn(i64) -> i64, x: i64) -> i64 { f(x) }
fn main(a: i64) -> i64 { apply(|v: i64| v + 1, a) }
"""))
        assert after.higher_order_params == 0
        assert after.cff_violations == 0

"""Property tests for the scalar reference semantics (core/fold.py).

These pin down the arithmetic contract shared by the constant folder,
the interpreter and the VM: canonical representations, wrapping,
division/shift corner cases, IEEE behaviour.
"""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.core import fold
from repro.core import types as ct
from repro.core.primops import ArithKind, CmpRel, MathKind

INT_TYPES = [ct.I8, ct.I16, ct.I32, ct.I64, ct.U8, ct.U16, ct.U32, ct.U64]


def int_values(prim):
    return st.integers(min_value=0, max_value=(1 << prim.bitwidth) - 1)


class TestCanonical:
    @given(st.integers())
    def test_canonical_int_range(self, value):
        for width in (8, 16, 32, 64):
            c = fold.canonical_int(value, width)
            assert 0 <= c < (1 << width)

    @given(st.integers())
    def test_signed_roundtrip(self, value):
        width = 32
        c = fold.canonical_int(value, width)
        s = fold.to_signed(c, width)
        assert -(1 << 31) <= s < (1 << 31)
        assert fold.canonical_int(s, width) == c

    def test_canonicalize_bool(self):
        assert fold.canonicalize(ct.PrimTypeKind.BOOL, 2) is True
        assert fold.canonicalize(ct.PrimTypeKind.BOOL, 0) is False

    def test_canonicalize_f32_rounds(self):
        pi32 = fold.canonicalize(ct.PrimTypeKind.F32, math.pi)
        assert pi32 != math.pi
        assert pi32 == struct.unpack("<f", struct.pack("<f", math.pi))[0]

    @given(st.floats(allow_nan=False))
    def test_round_f32_idempotent(self, x):
        once = fold.round_f32(x)
        assert fold.round_f32(once) == once or math.isnan(once)


class TestIntArith:
    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    def test_add_matches_wrapping(self, a, b):
        assert fold.arith(ArithKind.ADD, ct.U32, a, b) == (a + b) % 2**32
        assert fold.arith(ArithKind.ADD, ct.I32, a, b) == (a + b) % 2**32

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_mul_wraps_u8(self, a, b):
        assert fold.arith(ArithKind.MUL, ct.U8, a, b) == (a * b) % 256

    @given(a=st.integers(-(2**31), 2**31 - 1), b=st.integers(-(2**31), 2**31 - 1))
    def test_signed_div_truncates_toward_zero(self, a, b):
        if b == 0:
            return
        ca = fold.canonical_int(a, 32)
        cb = fold.canonical_int(b, 32)
        got = fold.to_signed(fold.arith(ArithKind.DIV, ct.I32, ca, cb), 32)
        want = fold.canonical_int(int(a / b), 32)
        assert fold.canonical_int(got, 32) == want

    @given(a=st.integers(-(2**31), 2**31 - 1), b=st.integers(-(2**31), 2**31 - 1))
    def test_signed_rem_sign_of_dividend(self, a, b):
        if b == 0:
            return
        ca = fold.canonical_int(a, 32)
        cb = fold.canonical_int(b, 32)
        got = fold.to_signed(fold.arith(ArithKind.REM, ct.I32, ca, cb), 32)
        want = a - int(a / b) * b
        assert got == want

    def test_division_by_zero_traps(self):
        with pytest.raises(fold.EvalError):
            fold.arith(ArithKind.DIV, ct.I32, 1, 0)
        with pytest.raises(fold.EvalError):
            fold.arith(ArithKind.REM, ct.U64, 1, 0)

    def test_int_min_div_minus_one_wraps(self):
        int_min = fold.canonical_int(-(2**31), 32)
        minus_one = fold.canonical_int(-1, 32)
        assert fold.arith(ArithKind.DIV, ct.I32, int_min, minus_one) == int_min

    @given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 255))
    def test_shift_amount_masked(self, a, b):
        got = fold.arith(ArithKind.SHL, ct.U16, a, b)
        assert got == (a << (b & 15)) % 2**16

    def test_arithmetic_shift_right_sign_fills(self):
        minus_8 = fold.canonical_int(-8, 32)
        got = fold.arith(ArithKind.SHR, ct.I32, minus_8, 2)
        assert fold.to_signed(got, 32) == -2

    def test_logical_shift_right_zero_fills(self):
        high = 0x8000_0000
        assert fold.arith(ArithKind.SHR, ct.U32, high, 4) == 0x0800_0000

    @given(a=st.integers(0, 2**64 - 1), b=st.integers(0, 2**64 - 1))
    def test_bitops(self, a, b):
        assert fold.arith(ArithKind.AND, ct.U64, a, b) == a & b
        assert fold.arith(ArithKind.OR, ct.U64, a, b) == a | b
        assert fold.arith(ArithKind.XOR, ct.U64, a, b) == a ^ b


class TestBoolArith:
    @given(a=st.booleans(), b=st.booleans())
    def test_bool_table(self, a, b):
        assert fold.arith(ArithKind.AND, ct.BOOL, a, b) == (a and b)
        assert fold.arith(ArithKind.OR, ct.BOOL, a, b) == (a or b)
        assert fold.arith(ArithKind.XOR, ct.BOOL, a, b) == (a != b)


class TestFloatArith:
    @given(a=st.floats(allow_nan=False, allow_infinity=False),
           b=st.floats(allow_nan=False, allow_infinity=False))
    def test_f64_matches_python(self, a, b):
        assert fold.arith(ArithKind.ADD, ct.F64, a, b) == a + b
        assert fold.arith(ArithKind.MUL, ct.F64, a, b) == a * b

    def test_div_by_zero_gives_inf(self):
        assert fold.arith(ArithKind.DIV, ct.F64, 1.0, 0.0) == math.inf
        assert fold.arith(ArithKind.DIV, ct.F64, -1.0, 0.0) == -math.inf
        assert math.isnan(fold.arith(ArithKind.DIV, ct.F64, 0.0, 0.0))

    def test_rem_nan_cases(self):
        assert math.isnan(fold.arith(ArithKind.REM, ct.F64, 1.0, 0.0))
        assert math.isnan(fold.arith(ArithKind.REM, ct.F64, math.inf, 2.0))

    @given(a=st.floats(width=32, allow_nan=False),
           b=st.floats(width=32, allow_nan=False))
    def test_f32_results_are_f32(self, a, b):
        got = fold.arith(ArithKind.ADD, ct.F32, a, b)
        assert got == fold.round_f32(got) or math.isnan(got)


class TestCompare:
    @given(a=st.integers(-(2**63), 2**63 - 1), b=st.integers(-(2**63), 2**63 - 1))
    def test_signed_compare(self, a, b):
        ca, cb = fold.canonical_int(a, 64), fold.canonical_int(b, 64)
        assert fold.compare(CmpRel.LT, ct.I64, ca, cb) == (a < b)
        assert fold.compare(CmpRel.GE, ct.I64, ca, cb) == (a >= b)
        assert fold.compare(CmpRel.EQ, ct.I64, ca, cb) == (a == b)

    @given(a=st.integers(0, 2**64 - 1), b=st.integers(0, 2**64 - 1))
    def test_unsigned_compare(self, a, b):
        assert fold.compare(CmpRel.LT, ct.U64, a, b) == (a < b)

    def test_nan_compares(self):
        nan = math.nan
        assert not fold.compare(CmpRel.EQ, ct.F64, nan, nan)
        assert not fold.compare(CmpRel.LT, ct.F64, nan, 1.0)
        assert fold.compare(CmpRel.NE, ct.F64, nan, nan)

    def test_rel_swap_negate(self):
        assert CmpRel.LT.swap() is CmpRel.GT
        assert CmpRel.LE.swap() is CmpRel.GE
        assert CmpRel.EQ.swap() is CmpRel.EQ
        assert CmpRel.LT.negate() is CmpRel.GE
        assert CmpRel.EQ.negate() is CmpRel.NE


class TestCasts:
    def test_float_to_int_truncates(self):
        assert fold.cast(ct.I32, ct.F64, 2.9) == 2
        assert fold.to_signed(fold.cast(ct.I32, ct.F64, -2.9), 32) == -2

    def test_float_to_int_wraps(self):
        got = fold.cast(ct.I8, ct.F64, 300.0)
        assert got == 300 % 256

    def test_nan_to_int_is_zero(self):
        assert fold.cast(ct.I64, ct.F64, math.nan) == 0

    @given(v=st.integers(0, 2**32 - 1))
    def test_int_widen_sign_extends(self, v):
        got = fold.cast(ct.I64, ct.I32, v)
        assert fold.to_signed(got, 64) == fold.to_signed(v, 32)

    @given(v=st.integers(0, 2**32 - 1))
    def test_int_widen_zero_extends_unsigned(self, v):
        assert fold.cast(ct.U64, ct.U32, v) == v

    @given(v=st.integers(0, 2**64 - 1))
    def test_int_narrow_truncates(self, v):
        assert fold.cast(ct.U8, ct.U64, v) == v % 256

    def test_bool_conversions(self):
        assert fold.cast(ct.I32, ct.BOOL, True) == 1
        assert fold.cast(ct.BOOL, ct.I32, 7) is True
        assert fold.cast(ct.BOOL, ct.F64, 0.0) is False

    @given(v=st.integers(0, 2**32 - 1))
    def test_bitcast_roundtrip_i32_f32(self, v):
        f = fold.bitcast(ct.F32, ct.U32, v)
        back = fold.bitcast(ct.U32, ct.F32, f)
        # NaN payloads may not round-trip bit-exactly through Python
        # floats; everything else must.
        if not math.isnan(f):
            assert back == v

    @given(v=st.floats(allow_nan=False))
    def test_bitcast_roundtrip_f64_u64(self, v):
        bits = fold.bitcast(ct.U64, ct.F64, v)
        assert fold.bitcast(ct.F64, ct.U64, bits) == v


class TestMath:
    def test_sqrt(self):
        assert fold.math_op(MathKind.SQRT, ct.F64, 9.0) == 3.0
        assert math.isnan(fold.math_op(MathKind.SQRT, ct.F64, -1.0))

    def test_floor_returns_float(self):
        got = fold.math_op(MathKind.FLOOR, ct.F64, 2.7)
        assert got == 2.0 and isinstance(got, float)

    def test_log_edge_cases(self):
        assert fold.math_op(MathKind.LOG, ct.F64, 0.0) == -math.inf
        assert math.isnan(fold.math_op(MathKind.LOG, ct.F64, -1.0))

    def test_exp_overflow_is_inf(self):
        assert fold.math_op(MathKind.EXP, ct.F64, 1e10) == math.inf

    @given(v=st.floats(min_value=0.0, max_value=1e300))
    def test_sqrt_matches_python(self, v):
        assert fold.math_op(MathKind.SQRT, ct.F64, v) == math.sqrt(v)

"""The differential oracle: agreement on clean programs, detection of
planted divergences, trap normalization, and path bookkeeping."""

from __future__ import annotations

import shutil

import pytest

from repro.fuzz import GenConfig, OracleConfig, generate_program, run_oracle
from repro.fuzz.gen import Bin, FuzzFn, FuzzProgram, Lit, Var
from repro.fuzz.oracle import TRAP, Observation, _compare

HAVE_CC = shutil.which("gcc") is not None


def _tiny(result, *, arg_sets=((3, 4),)) -> FuzzProgram:
    entry = FuzzFn("fz", (("a", "i64"), ("b", "i64")), "i64", (), result,
                   extern=True)
    return FuzzProgram((entry,), "fz", tuple(arg_sets), seed="tiny")


class TestCompare:
    def test_equal_observations_pass(self):
        prog = _tiny(Var("i64", "a"))
        ref = [Observation(3, "x")]
        assert _compare("s", prog, ref, [Observation(3, "x")]) is None

    def test_result_divergence_reported(self):
        prog = _tiny(Var("i64", "a"))
        failure = _compare("vm(static)", prog, [Observation(3)],
                           [Observation(4)])
        assert failure is not None
        assert failure.stage == "vm(static)"
        assert failure.expected == 3 and failure.got == 4
        assert failure.signature == ("vm(static)",)

    def test_output_divergence_reported(self):
        prog = _tiny(Var("i64", "a"))
        failure = _compare("c", prog, [Observation(3, "12")],
                           [Observation(3, "1")])
        assert failure is not None
        assert failure.message == "print-output divergence"

    def test_trap_sentinel_agrees_with_itself(self):
        prog = _tiny(Var("i64", "a"))
        assert _compare("s", prog, [Observation(TRAP)],
                        [Observation(TRAP)]) is None

    def test_outputs_can_be_ignored(self):
        prog = _tiny(Var("i64", "a"))
        assert _compare("ssa", prog, [Observation(3, "out")],
                        [Observation(3, "")], outputs=False) is None


class TestCleanPrograms:
    def test_generated_seeds_agree_everywhere(self):
        record = {}
        for seed in range(4):
            prog = generate_program(seed)
            failure = run_oracle(prog, OracleConfig(record=record))
            assert failure is None, failure.describe()
        # every path must actually have run at least once
        assert {"interp(none)", "interp(static)", "vm(static)",
                "interp(pgo)", "vm(pgo)"} <= record["paths"]
        if HAVE_CC:
            assert "c(static)" in record["paths"]

    def test_expr_only_exercises_cps_baseline(self):
        record = {}
        prog = generate_program(1, GenConfig(expr_only=True))
        assert run_oracle(prog, OracleConfig(record=record)) is None
        assert "cps" in record["paths"]
        assert "ssa" in record["paths"]  # expr-only programs are first-order

    def test_handwritten_program_passes(self):
        prog = _tiny(Bin("i64", "+", Var("i64", "a"),
                         Bin("i64", "*", Var("i64", "b"), Lit("i64", 7))),
                     arg_sets=((3, 4), (-5, 9)))
        assert run_oracle(prog, OracleConfig()) is None


class TestDetection:
    def test_oracle_catches_semantic_change(self, monkeypatch):
        """A pass that silently changes semantics must be flagged."""
        from repro.fuzz.inject import drop_one_argument
        import repro.transform.pipeline as pipeline

        prog = generate_program(24)
        original = pipeline.optimize

        def sabotaged(world, **kwargs):
            stats = original(world, **kwargs)
            drop_one_argument(world)
            return stats

        monkeypatch.setattr(pipeline, "optimize", sabotaged)
        # run_vm=False: the bounded interpreter alone catches the
        # sabotage; a dropped loop-carried argument can make the
        # program spin until the (much larger) VM step budget.
        failure = run_oracle(prog, OracleConfig(run_pgo=False, run_c=False,
                                                run_ssa=False, run_vm=False,
                                                verify_each_pass=False,
                                                interp_max_steps=200_000))
        assert failure is not None
        assert "divergence" in failure.message

    def test_verify_each_pass_catches_broken_invariant(self, monkeypatch):
        """A pass that corrupts the IR is attributed by stage."""
        import repro.transform.inliner as inliner

        prog = generate_program(2)
        original = inliner.inline_small_functions

        def corrupting(world, **kwargs):
            stats = original(world, **kwargs)
            # prune a continuation other code still references
            for cont in list(world.continuations()):
                if (cont.has_body() and not cont.is_external
                        and not cont.is_intrinsic() and cont.uses):
                    live = set(world.continuations()) - {cont}
                    world._prune_continuations(live)
                    break
            return stats

        monkeypatch.setattr(inliner, "inline_small_functions", corrupting)
        # the pipeline imports the pass inside the function, so patch at
        # the source module and re-resolve
        failure = run_oracle(prog, OracleConfig(run_pgo=False, run_c=False,
                                                run_ssa=False))
        assert failure is not None
        assert failure.stage in ("verify(static)", "compile(static)")

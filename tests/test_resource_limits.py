"""Structured resource limits: one error family across every engine."""

from __future__ import annotations

import pytest

from repro.backend import bytecode as bc
from repro.backend.codegen import compile_world
from repro.backend.interp import Interpreter, InterpError, StepLimitExceeded
from repro.baselines.nested_cps import cps_convert_expr, evaluate
from repro.baselines.nested_cps.interp import (CPSRuntimeError,
                                               CPSStepLimitExceeded)
from repro.baselines.ssa import compile_source_ssa, run_ssa
from repro.core.limits import DeadlineExceeded, ResourceLimitError, deadline
from repro.frontend import compile_source
from repro.frontend.parser import MAX_NESTING_DEPTH, ParseError, parse

LOOP = """
fn main(n: i64) -> i64 {
    let mut acc = 0;
    for i in 0..n { acc += i; }
    acc
}
"""


def test_interp_step_limit_is_structured():
    world = compile_source(LOOP, optimize=False)
    with pytest.raises(StepLimitExceeded) as info:
        Interpreter(world, max_steps=50).call("main", 1000)
    err = info.value
    assert isinstance(err, InterpError)
    assert isinstance(err, ResourceLimitError)
    assert err.resource == "steps"
    assert err.limit == 50
    assert err.engine == "interp"


def test_vm_step_limit_plain_loop():
    world = compile_source(LOOP)
    compiled = compile_world(world, max_steps=30)
    with pytest.raises(bc.VMLimitError) as info:
        compiled.call("main", 100000)
    assert isinstance(info.value, bc.VMError)
    assert isinstance(info.value, ResourceLimitError)
    assert info.value.resource == "steps"
    assert info.value.engine == "vm"


def test_vm_step_limit_profiled_loop():
    """The instrumented dispatch loop enforces the same budget."""
    from repro.profile.collector import ProfileCollector

    world = compile_source(LOOP)
    compiled = compile_world(world, profile=ProfileCollector(),
                             max_steps=30)
    with pytest.raises(bc.VMLimitError):
        compiled.call("main", 100000)


def test_vm_step_limit_allows_completion():
    world = compile_source(LOOP)
    compiled = compile_world(world, max_steps=10_000_000)
    assert compiled.call("main", 10) == 45


def test_vm_heap_limit_is_structured():
    vm = bc.VM(heap_limit=100)
    with pytest.raises(bc.VMLimitError) as info:
        vm.alloc_words(1000)
    assert isinstance(info.value, bc.VMError)
    assert isinstance(info.value, ResourceLimitError)
    assert info.value.resource == "heap"
    assert info.value.limit == 100


def test_ssa_step_limit():
    module = compile_source_ssa(LOOP)
    with pytest.raises(bc.VMLimitError):
        run_ssa(module, "main", 100000, max_steps=30)
    assert run_ssa(module, "main", 10, max_steps=10_000_000) == 45


def test_cps_step_limit():
    term = cps_convert_expr(("+", ("*", 2, 3), ("-", 10, 4)))
    assert evaluate(term) == 12
    with pytest.raises(CPSStepLimitExceeded) as info:
        evaluate(term, max_steps=1)
    assert isinstance(info.value, CPSRuntimeError)
    assert isinstance(info.value, ResourceLimitError)
    assert info.value.engine == "nested-cps"


def test_resource_limit_error_message():
    err = ResourceLimitError("steps", 42, "demo")
    assert "steps" in str(err) and "42" in str(err) and "demo" in str(err)


def test_deadline_is_a_resource_limit():
    import time

    with pytest.raises(DeadlineExceeded) as info:
        with deadline(0.05, what="unit test"):
            time.sleep(1.0)
    assert isinstance(info.value, ResourceLimitError)
    assert info.value.engine == "deadline"


def test_deadline_noop_when_disabled():
    with deadline(None):
        pass
    with deadline(0):
        pass


# -- parser depth guard ------------------------------------------------------


def test_parser_rejects_pathological_expression_nesting():
    source = ("fn main(a: i64) -> i64 { "
              + "(" * (MAX_NESTING_DEPTH + 10)
              + "a"
              + ")" * (MAX_NESTING_DEPTH + 10)
              + " }")
    with pytest.raises(ParseError, match="nested deeper than"):
        parse(source)


def test_parser_rejects_pathological_unary_nesting():
    source = ("fn main(a: i64) -> i64 { "
              + "-" * (2 * MAX_NESTING_DEPTH + 10) + "a }")
    with pytest.raises(ParseError, match="nested deeper than"):
        parse(source)


def test_parser_rejects_pathological_block_nesting():
    source = ("fn main(a: i64) -> i64 "
              + "{ " * (MAX_NESTING_DEPTH + 10)
              + "a"
              + " }" * (MAX_NESTING_DEPTH + 10))
    with pytest.raises(ParseError, match="nested deeper than"):
        parse(source)


def test_parser_accepts_reasonable_nesting():
    depth = 50
    source = ("fn main(a: i64) -> i64 { "
              + "(" * depth + "a + 1" + ")" * depth + " }")
    world = compile_source(source, optimize=False)
    assert Interpreter(world).call("main", 41) == 42

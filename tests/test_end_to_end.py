"""End-to-end: the whole suite through every execution path.

The strongest integration property in the repository: for every suite
program, the unoptimized graph interpreter, the optimized graph
interpreter, the Thorin→bytecode VM, and (for first-order programs)
the classical SSA baseline all agree — and the optimized world is in
control-flow form.
"""

import pytest

from repro import compile_source
from repro.backend.codegen import compile_world
from repro.backend.interp import Interpreter
from repro.baselines.ssa import CompiledSSA, compile_source_ssa
from repro.core.verify import cff_violations, verify
from repro.programs import ALL_PROGRAMS, by_tag


@pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
def test_all_backends_agree(program):
    reference = Interpreter(
        compile_source(program.source, optimize=False)
    ).call(program.entry, *program.test_args)
    if program.test_expect is not None:
        assert reference == program.test_expect

    world = compile_source(program.source)
    verify(world)
    assert cff_violations(world) == []

    optimized = Interpreter(world).call(program.entry, *program.test_args)
    assert optimized == reference

    vm_result = compile_world(world).call(program.entry, *program.test_args)
    assert vm_result == reference


@pytest.mark.parametrize("program", by_tag("imperative"), ids=lambda p: p.name)
def test_ssa_baseline_agrees(program):
    reference = Interpreter(
        compile_source(program.source, optimize=False)
    ).call(program.entry, *program.test_args)
    module = compile_source_ssa(program.source)
    assert CompiledSSA(module).call(program.entry, *program.test_args) \
        == reference


@pytest.mark.parametrize("program", by_tag("imperative"), ids=lambda p: p.name)
def test_unoptimized_ssa_agrees(program):
    reference = Interpreter(
        compile_source(program.source, optimize=False)
    ).call(program.entry, *program.test_args)
    module = compile_source_ssa(program.source, optimize=False)
    assert CompiledSSA(module).call(program.entry, *program.test_args) \
        == reference


def test_print_output_identical_across_backends():
    source = """
fn main() -> i64 {
    for i in 0..5 {
        print_i64(i * i);
        print_char(32u8);
    }
    print_char(10u8);
    0
}
"""
    world = compile_source(source)
    interp = Interpreter(world)
    interp.call("main")
    compiled = compile_world(world)
    compiled.call("main")
    assert interp.output_text() == compiled.output_text() == "0 1 4 9 16 \n"


def test_folding_ablation_preserves_semantics():
    for program in ALL_PROGRAMS[:6]:
        reference = Interpreter(
            compile_source(program.source, optimize=False)
        ).call(program.entry, *program.test_args)
        nofold = compile_source(program.source, folding=False)
        got = Interpreter(nofold).call(program.entry, *program.test_args)
        assert got == reference, program.name


def test_every_placement_policy_runs_the_suite():
    from repro.core.schedule import Placement

    for program in by_tag("imperative")[:4]:
        world = compile_source(program.source)
        reference = Interpreter(world).call(program.entry, *program.test_args)
        for placement in Placement:
            got = compile_world(world, placement=placement).call(
                program.entry, *program.test_args
            )
            assert got == reference, (program.name, placement)

"""Unit tests for lambda mangling — the paper's central transformation."""

import pytest

from repro.core import types as ct
from repro.core.scope import Scope
from repro.core.primops import Literal
from repro.core.world import World
from repro.backend.interp import Interpreter
from repro.transform.mangle import (
    MangleStats,
    Mangler,
    clone,
    drop,
    inline_call,
    lift,
    mangle,
)

from .helpers import FN_I64, RET_I64, make_add_const, make_fib, make_loop_sum


@pytest.fixture()
def world():
    return World("test")


def run(world, cont, *args):
    name = cont.name
    if not cont.is_external:
        world.make_external(cont)
        world._externals[name] = cont
    return Interpreter(world).call(name, *args)


class TestDrop:
    def test_drop_constant_arg(self, world):
        fib = make_fib(world)
        world.make_external(fib)
        fib9 = drop(Scope(fib), {fib.params[1]: world.literal(ct.I64, 9)})
        fib9.name = "fib9"
        assert fib9.num_params == 2  # mem + ret
        assert run(world, fib9) == 34

    def test_drop_list_form(self, world):
        fib = make_fib(world)
        world.make_external(fib)
        fib8 = drop(Scope(fib), [None, world.literal(ct.I64, 8), None])
        fib8.name = "fib8"
        assert run(world, fib8) == 21

    def test_drop_folds_with_substituted_values(self, world):
        addc = make_add_const(world, 10)
        spec = drop(Scope(addc), {addc.params[1]: world.literal(ct.I64, 5)})
        # body becomes ret(mem, 15): folding re-fired during the copy
        assert isinstance(spec.arg(1), Literal)
        assert spec.arg(1).value == 15

    def test_original_untouched(self, world):
        fib = make_fib(world)
        world.make_external(fib)
        before = (fib.callee, fib.args)
        drop(Scope(fib), {fib.params[1]: world.literal(ct.I64, 3)})
        assert (fib.callee, fib.args) == before
        assert run(world, fib, 10) == 55

    def test_tail_recursive_knot_tied(self, world):
        # sum_to jumps to itself through blocks; cloning its scope with a
        # dropped n must redirect the self-call to the copy.
        loop = make_loop_sum(world)
        world.make_external(loop)
        spec = drop(Scope(loop), {loop.params[1]: world.literal(ct.I64, 5)})
        spec.name = "sum5"
        assert run(world, spec) == 10

    def test_recursive_call_with_changed_args_stays_generic(self, world):
        fib = make_fib(world)
        world.make_external(fib)
        spec = drop(Scope(fib), {fib.params[1]: world.literal(ct.I64, 6)})
        # the recursive calls inside the copy go to the *generic* fib
        scope = Scope(spec)
        callees = {c.callee for c in scope.continuations() if c.has_body()}
        assert fib in callees


class TestCloneAndLift:
    def test_clone_behaves_identically(self, world):
        fib = make_fib(world)
        world.make_external(fib)
        copy = clone(Scope(fib))
        copy.name = "fib_copy"
        assert run(world, copy, 11) == 89

    def test_clone_is_fresh(self, world):
        fib = make_fib(world)
        copy = clone(Scope(fib))
        assert copy is not fib
        assert not (set(Scope(copy).continuations()) - {fib}) \
            & set(Scope(fib).continuations())

    def test_lift_abstracts_free_def(self, world):
        outer = world.continuation(FN_I64, "outer")
        mem, x, ret = outer.params
        inner = world.continuation(RET_I64, "inner")
        world.jump(inner, ret, (inner.params[0],
                                world.add(inner.params[1], x)))
        # lift inner over x: the new entry takes x explicitly
        lifted = lift(Scope(inner), (x,))
        assert lifted.num_params == inner.num_params + 1
        assert lifted.params[-1].type is ct.I64
        # and the lifted body no longer references outer's x
        assert x not in Scope(lifted).free_defs()


class TestInlineCall:
    def test_inline_simple(self, world):
        addc = make_add_const(world, 7)
        caller = world.continuation(FN_I64, "caller")
        world.make_external(caller)
        world.jump(caller, addc, tuple(caller.params))
        assert inline_call(caller)
        # caller now jumps to a dropped copy with zero params
        assert caller.callee is not addc
        assert run(world, caller, 5) == 12

    def test_inline_unknown_callee_refused(self, world):
        caller = world.continuation(FN_I64, "caller")
        mem, x, ret = caller.params
        world.jump(caller, ret, (mem, x))
        assert not inline_call(caller)  # callee is a param

    def test_inline_preserves_semantics(self, world):
        fib = make_fib(world)
        world.make_external(fib)
        caller = world.continuation(FN_I64, "main")
        world.make_external(caller)
        world.jump(caller, fib,
                   (caller.params[0], world.literal(ct.I64, 10),
                    caller.params[2]))
        assert inline_call(caller)
        assert run(world, caller, 0) == 55


class TestStats:
    def test_no_structural_repair_ever(self, world):
        fib = make_fib(world)
        stats: list[MangleStats] = []
        mangle(Scope(fib), {fib.params[1]: world.literal(ct.I64, 5)},
               stats_out=stats)
        s = stats[0]
        assert s.phis_repaired == 0
        assert s.binders_rearranged == 0
        assert s.alpha_renames == 0
        assert s.continuations_copied >= 1

    def test_sharing_counted(self, world):
        addc = make_add_const(world, 2)
        stats: list[MangleStats] = []
        drop(Scope(addc), {addc.params[1]: world.literal(ct.I64, 1)},
             stats_out=stats)
        assert stats[0].defs_shared >= 1


class TestManglerValidation:
    def test_spec_must_target_entry_params(self, world):
        fib = make_fib(world)
        other = world.continuation(FN_I64, "other")
        with pytest.raises(AssertionError):
            Mangler(Scope(fib), {other.params[1]: world.literal(ct.I64, 1)})

    def test_marker_preserved_on_redirected_recursion(self, world):
        # jump run(f)(..., same-args...) keeps its marker on the new target
        loop = make_loop_sum(world)
        entry_jumpers = [c for c in Scope(loop).continuations()
                         if c.has_body() and c.callee is loop]
        # no self jumps directly to entry here; just sanity-run mangle
        spec = drop(Scope(loop), {loop.params[1]: world.literal(ct.I64, 3)})
        assert spec.num_params == 2

"""Hand-written edge cases for the memory optimizer (``transform/mem_opt``).

Each test builds the IR shape directly (same idiom as ``helpers.py``)
and pins one soundness gate of the pass: trap preservation under DSE,
the call/join wall for forwarding, Must-aliasing store pairs across a
branch join, and escape-driven degradation of Not to May.  The same
four shapes exist as source-level repros under ``tests/corpus/`` and
are replayed through the full differential oracle by
``test_trap_regressions.py::test_corpus_replay``.
"""

from __future__ import annotations

from repro.backend.interp import Interpreter
from repro.core import types as ct
from repro.core.alias import MAY, NOT, AliasAnalysis, world_memory_ops
from repro.core.primops import Load, Store
from repro.core.verify import verify
from repro.core.world import World
from repro.transform.mem_opt import optimize_memory

RET_I64 = ct.fn_type((ct.MEM, ct.I64))
FN_I64 = ct.fn_type((ct.MEM, ct.I64, RET_I64))
FN_I64x2 = ct.fn_type((ct.MEM, ct.I64, ct.I64, RET_I64))


def _loads_and_stores(world):
    ops = world_memory_ops(world)
    return ([op for op in ops if isinstance(op, Load)],
            [op for op in ops if isinstance(op, Store)])


def test_trapping_value_between_two_stores_blocks_dse():
    """store s (x/y); store s 0 — the first store is Must-overwritten,
    but removing it would let cleanup drop the division and with it the
    div-by-zero trap.  ``may_trap`` gates it; both stores survive."""
    world = World("dse_trap")
    fn = world.continuation(FN_I64x2, "f")
    world.make_external(fn)
    mem, x, y, ret = fn.params
    mem1, frame = world.enter(mem)
    s = world.slot(ct.I64, frame, "s")
    quotient = world.div(x, y)  # may trap: y could be zero
    st1 = world.store(mem1, s, quotient)
    st2 = world.store(st1, s, world.literal(ct.I64, 0))
    mem2, value = world.load(st2, s)
    world.jump(fn, ret, (mem2, value))

    assert world.may_trap(quotient)
    stats = optimize_memory(world)
    verify(world, full=True)
    assert stats["dead_stores"] == 0
    _loads, stores = _loads_and_stores(world)
    assert len(stores) == 2


def test_discardable_value_between_two_stores_is_dse_candidate():
    """The control for the trap gate: the same shape with a
    non-trapping doomed value loses the first store.  (Construction
    folding would catch this same-token shape at build time; disable it
    so the pass itself is what is being tested.)"""
    world = World("dse_clean", folding=False)
    fn = world.continuation(FN_I64x2, "f")
    world.make_external(fn)
    mem, x, y, ret = fn.params
    mem1, frame = world.enter(mem)
    s = world.slot(ct.I64, frame, "s")
    st1 = world.store(mem1, s, world.add(x, y))
    st2 = world.store(st1, s, world.literal(ct.I64, 0))
    mem2, value = world.load(st2, s)
    world.jump(fn, ret, (mem2, value))

    stats = optimize_memory(world)
    verify(world, full=True)
    assert stats["dead_stores"] == 1
    _loads, stores = _loads_and_stores(world)
    assert len(stores) == 1


def test_call_boundary_blocks_forwarding():
    """A load whose chain starts at a continuation's mem parameter —
    the shape every call return and join block has — must not forward
    from a store on the other side of the wall: the callee may have
    overwritten the cell."""
    world = World("call_wall")
    fn = world.continuation(FN_I64, "f")
    world.make_external(fn)
    mem, x, ret = fn.params
    mem1, frame = world.enter(mem)
    s = world.slot(ct.I64, frame, "s")
    st = world.store(mem1, s, x)
    after = world.basic_block((ct.MEM,), "after_call")
    world.jump(fn, after, (st,))
    mem2, value = world.load(after.params[0], s)
    world.jump(after, ret, (mem2, value))

    stats = optimize_memory(world)
    verify(world, full=True)
    assert stats["forwarded"] == 0 and stats["load_cse"] == 0
    loads, stores = _loads_and_stores(world)
    assert len(loads) == 1 and len(stores) == 1


def test_must_aliasing_store_pair_across_branch_join_stays():
    """store s 1 on one arm, store s 2 on the other, load s at the
    join: the two stores Must-alias but live on different paths — the
    join's mem parameter walls off both forwarding and DSE."""
    world = World("branch_join")
    fn = world.continuation(FN_I64, "f")
    world.make_external(fn)
    mem, x, ret = fn.params
    mem1, frame = world.enter(mem)
    s = world.slot(ct.I64, frame, "s")
    then_bb = world.basic_block((ct.MEM,), "then")
    else_bb = world.basic_block((ct.MEM,), "else")
    join = world.basic_block((ct.MEM,), "join")
    cond = world.lt(x, world.literal(ct.I64, 0))
    world.jump(fn, world.branch(), (mem1, cond, then_bb, else_bb))
    world.jump(then_bb, join,
               (world.store(then_bb.params[0], s, world.literal(ct.I64, 1)),))
    world.jump(else_bb, join,
               (world.store(else_bb.params[0], s, world.literal(ct.I64, 2)),))
    mem2, value = world.load(join.params[0], s)
    world.jump(join, ret, (mem2, value))

    stats = optimize_memory(world)
    verify(world, full=True)
    assert stats["forwarded"] == 0 and stats["dead_stores"] == 0
    loads, stores = _loads_and_stores(world)
    assert len(loads) == 1 and len(stores) == 2

    interp = Interpreter(world)
    assert interp.call("f", -5) == 1
    assert interp.call("f", 5) == 2


def test_frame_escape_degrades_not_to_may_and_blocks_the_hop():
    """store s2 10; store s1 20; load s2 — with a private frame the
    middle store Not-aliases and the load forwards 10.  Once the frame
    is passed to a continuation, s1-vs-s2 is May and the hop is
    illegal: the load must survive."""
    def build(leak_frame: bool):
        world = World("frame_escape")
        sink_t = ct.fn_type((ct.MEM, ct.FRAME, ct.I64))
        fn_t = ct.fn_type((ct.MEM, ct.I64, sink_t))
        fn = world.continuation(fn_t, "f")
        world.make_external(fn)
        mem, x, sink = fn.params
        mem1, frame = world.enter(mem)
        s1 = world.slot(ct.I64, frame, "s1")
        s2 = world.slot(ct.I64, frame, "s2")
        st1 = world.store(mem1, s2, world.literal(ct.I64, 10))
        st2 = world.store(st1, s1, world.literal(ct.I64, 20))
        mem2, value = world.load(st2, s2)
        if leak_frame:
            world.jump(fn, sink, (mem2, frame, value))
        else:
            bottom_frame = world.bottom(ct.FRAME)
            world.jump(fn, sink, (mem2, bottom_frame, value))
        return world, s1, s2

    world, s1, s2 = build(leak_frame=False)
    assert AliasAnalysis(world).alias(s1, s2) == NOT
    stats = optimize_memory(world)
    verify(world, full=True)
    assert stats["forwarded"] == 1

    world, s1, s2 = build(leak_frame=True)
    assert AliasAnalysis(world).alias(s1, s2) == MAY
    stats = optimize_memory(world)
    verify(world, full=True)
    assert stats["forwarded"] == 0
    loads, _stores = _loads_and_stores(world)
    assert len(loads) == 1


def test_store_to_load_forwarding_and_dead_load_retire():
    """The positive path: store s x; load s forwards x, the retired
    load disappears, and the store stays (it is the last write).
    Folding is off — with it on, this same-token shape never even
    builds a Load — so the pass's own forwarding is what runs."""
    world = World("forward", folding=False)
    fn = world.continuation(FN_I64, "f")
    world.make_external(fn)
    mem, x, ret = fn.params
    mem1, frame = world.enter(mem)
    s = world.slot(ct.I64, frame, "s")
    st = world.store(mem1, s, x)
    mem2, value = world.load(st, s)
    world.jump(fn, ret, (mem2, value))

    stats = optimize_memory(world)
    verify(world, full=True)
    assert stats["forwarded"] == 1
    loads, stores = _loads_and_stores(world)
    assert len(loads) == 0 and len(stores) == 1
    assert Interpreter(world).call("f", 42) == 42

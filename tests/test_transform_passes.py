"""Unit tests for the optimization passes (cleanup, PE, closure elim,
inliner, lambda dropping) and the generic rewriter."""

import pytest

from repro import compile_source
from repro.backend.interp import Interpreter
from repro.core import types as ct
from repro.core.rewrite import replace_def, rewrite_uses
from repro.core.scope import Scope
from repro.core.verify import cff_violations
from repro.core.world import World
from repro.transform.cleanup import cleanup, collect_garbage, eta_reduce
from repro.transform.closure_elim import eliminate_closures
from repro.transform.inliner import inline_small_functions
from repro.transform.lambda_dropping import drop_invariant_params
from repro.transform.partial_eval import is_static, partial_eval

from .helpers import FN_I64, RET_I64, make_add_const, make_fib


@pytest.fixture()
def world():
    return World("test")


class TestRewrite:
    def test_replace_rebuilds_users(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        doubled = world.add(x, x)
        world.jump(f, ret, (mem, doubled))
        five = world.literal(ct.I64, 5)
        rewrite_uses(world, {x: five})
        # the body was rebuilt and folded: add(5, 5) -> 10
        assert f.arg(1).value == 10

    def test_type_mismatch_rejected(self, world):
        f = world.continuation(FN_I64, "f")
        with pytest.raises(AssertionError):
            replace_def(f.params[1], world.literal(ct.F64, 1.0))

    def test_transitive_rebuild(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        a = world.add(x, world.one(ct.I64))
        b = world.mul(a, a)
        world.jump(f, ret, (mem, b))
        rewrite_uses(world, {x: world.literal(ct.I64, 3)})
        assert f.arg(1).value == 16


class TestCleanup:
    def test_garbage_collected(self, world):
        live = make_add_const(world, 1, "live")
        world.make_external(live)
        dead = make_add_const(world, 2, "dead")
        removed = collect_garbage(world)
        assert removed >= 1
        assert dead not in world.continuations()
        assert live in world.continuations()

    def test_eta_reduction(self, world):
        target = make_add_const(world, 3, "target")
        forwarder = world.continuation(FN_I64, "fwd")
        world.jump(forwarder, target, tuple(forwarder.params))
        caller = world.continuation(FN_I64, "caller")
        world.make_external(caller)
        world.jump(caller, forwarder, tuple(caller.params))
        assert eta_reduce(world) >= 1
        assert caller.callee is target

    def test_eta_skips_externals(self, world):
        target = make_add_const(world, 3, "target")
        forwarder = world.continuation(FN_I64, "fwd")
        world.make_external(forwarder)
        world.jump(forwarder, target, tuple(forwarder.params))
        eta_reduce(world)
        assert forwarder.callee is target  # body intact, not replaced

    def test_cleanup_preserves_semantics(self):
        world = compile_source("""
fn helper(x: i64) -> i64 { x * 3 }
fn main(a: i64) -> i64 { helper(a) + helper(a + 1) }
""", optimize=False)
        before = Interpreter(world).call("main", 5)
        cleanup(world)
        assert Interpreter(world).call("main", 5) == before == 33


class TestPartialEval:
    def test_pow_unrolls(self):
        world = compile_source("""
fn pow(x: i64, n: i64) -> i64 { if n == 0 { 1 } else { x * pow(x, n-1) } }
fn main(x: i64) -> i64 { @pow(x, 4) }
""", optimize=False)
        stats = partial_eval(world)
        assert stats["specialized"] >= 4
        cleanup(world)
        assert Interpreter(world).call("main", 3) == 81

    def test_hlt_blocks_specialization(self):
        world = compile_source("""
fn pow(x: i64, n: i64) -> i64 { if n == 0 { 1 } else { x * pow(x, n-1) } }
fn main(x: i64) -> i64 { $pow(x, 4) }
""", optimize=False)
        stats = partial_eval(world)
        assert stats["specialized"] == 0
        assert Interpreter(world).call("main", 3) == 81

    def test_budget_terminates_dynamic_recursion(self):
        # a loop whose bound is dynamic cannot be fully unfolded; the
        # budget must stop the evaluator and leave a correct residual.
        world = compile_source("""
fn count(n: i64) -> i64 { if n == 0 { 0 } else { 1 + count(n - 1) } }
fn main(n: i64) -> i64 { @count(n + 1) }
""", optimize=False)
        stats = partial_eval(world, budget=16)
        assert stats["budget_left"] >= 0
        cleanup(world)
        assert Interpreter(world).call("main", 5) == 6

    def test_cache_shares_specializations(self):
        world = compile_source("""
fn pow(x: i64, n: i64) -> i64 { if n == 0 { 1 } else { x * pow(x, n-1) } }
fn main(x: i64) -> i64 { @pow(x, 3) + @pow(x + 1, 3) }
""", optimize=False)
        stats = partial_eval(world)
        assert stats["cache_hits"] >= 1  # pow_3..pow_0 shared across sites

    def test_is_static(self, world):
        assert is_static(world.literal(ct.I64, 1))
        assert is_static(world.bottom(ct.I64))
        assert is_static(world.tuple_((world.literal(ct.I64, 1),)))
        f = world.continuation(FN_I64, "f")
        assert not is_static(f.params[1])
        closed = make_add_const(world, 1)
        assert is_static(closed)
        assert not is_static(world.hlt(closed))


class TestClosureElim:
    def test_hof_reaches_cff(self):
        world = compile_source("""
fn apply(f: fn(i64) -> i64, x: i64) -> i64 { f(x) }
fn main(a: i64) -> i64 { apply(|v: i64| v * 2, a) }
""")
        assert cff_violations(world) == []
        assert Interpreter(world).call("main", 21) == 42

    def test_recursive_closure_lifted(self):
        # a recursive inner function capturing its environment
        world = compile_source("""
fn main(n: i64) -> i64 {
    let step = n + 1;
    let mut total = 0;
    let mut i = 0;
    while i < 10 {
        total += step;
        i += 1;
    }
    total
}
""")
        assert cff_violations(world) == []
        assert Interpreter(world).call("main", 2) == 30

    def test_escaping_closure_eliminated(self):
        world = compile_source("""
fn make(n: i64) -> fn(i64) -> i64 { |x: i64| x + n }
fn main() -> i64 { make(5)(6) }
""")
        assert cff_violations(world) == []
        assert Interpreter(world).call("main") == 11

    def test_stale_scope_cache_regression(self):
        # Found by the differential fuzzer (seed 291, minimized by the
        # shrinker).  Specializing ``hof`` burns ``h``'s return
        # parameter into the copy, which makes the copy a member of
        # ``h``'s scope; a later specialization of ``h`` in the same
        # round then must *copy* it, not share it.  With a stale scope
        # cache the copy was shared and returned through the original
        # ``h``'s parameter — an unbound parameter at run time.
        from repro.transform.pipeline import OptimizeOptions

        source = """
fn hof(f: fn(i64) -> i64, x: i64, y: i64) -> i64 { 0 }
fn h(p: i64, q: i64) -> i64 {
    let mut v = (if false { 0 } else { 0 });
    hof(|l: i64| 0, 0, 0)
}
extern fn main(a: i64, b: i64) -> i64 {
    let t = (h(0, 0), 0);
    h(0, 0)
}
"""
        world = compile_source(
            source, options=OptimizeOptions(verify_each_pass=True))
        assert cff_violations(world) == []
        assert Interpreter(world).call("main", -5, -3) == 0


class TestInliner:
    def test_once_called_inlined(self):
        world = compile_source("""
fn helper(a: i64) -> i64 { a * 7 }
fn main(x: i64) -> i64 { helper(x) }
""", optimize=False)
        stats = inline_small_functions(world)
        assert stats["inlined"] >= 1
        cleanup(world)
        assert Interpreter(world).call("main", 3) == 21
        # helper is garbage after inlining
        names = {c.name for c in world.continuations()}
        assert "helper" not in names

    def test_recursive_not_inlined(self, world):
        fib = make_fib(world)
        world.make_external(fib)
        stats = inline_small_functions(world)
        # fib's internal call sites are recursive: left alone
        assert Interpreter(world).call("fib", 10) == 55


class TestLambdaDropping:
    def test_invariant_param_dropped(self):
        world = compile_source("""
fn scaled(x: i64, factor: i64) -> i64 { x * factor }
fn main(a: i64) -> i64 { scaled(a, 3) + scaled(a + 1, 3) }
""", optimize=False)
        stats = drop_invariant_params(world)
        assert stats["params_removed"] >= 1
        cleanup(world)
        assert Interpreter(world).call("main", 5) == 33

    def test_divergent_args_kept(self):
        world = compile_source("""
fn scaled(x: i64, factor: i64) -> i64 { x * factor }
fn main(a: i64) -> i64 { scaled(a, 3) + scaled(a, 4) }
""", optimize=False)
        stats = drop_invariant_params(world)
        cleanup(world)
        assert Interpreter(world).call("main", 2) == 14

"""Native tier tests: hardened C emission, the cc driver, the loader,
and the serve daemon's interp -> vm -> native promotion.

Everything here needs a system C compiler; the whole module skips when
none is on PATH (CI runs it in the ``native-smoke`` job).  The central
claim under test is *byte-identity*: for every suite program and every
committed trap repro, the ``.so`` must produce the same result, the
same trap kind and the same print stream as the bytecode VM.
"""

from __future__ import annotations

import ast as pyast
import asyncio
import math
import threading
from pathlib import Path

import pytest

from repro import compile_source
from repro.backend import bytecode as bc
from repro.backend.codegen import compile_world
from repro.core.limits import ResourceLimitError
from repro.native import (NativeBuildError, NativeStore, compile_native_world,
                          emit_native_c, find_cc)
from repro.native.tiering import TieringManager, TieringPolicy
from repro.programs.suite import ALL_PROGRAMS
from repro.serve.client import ServeClient
from repro.serve.server import CompileServer, ServerConfig

pytestmark = pytest.mark.skipif(find_cc() is None,
                                reason="no C compiler on PATH")

CORPUS = Path(__file__).parent / "corpus"


def _trap_kind(exc: BaseException) -> str:
    if isinstance(exc, ResourceLimitError):
        return ("step-limit" if getattr(exc, "resource", "") == "steps"
                else "resource-limit")
    return "div-by-zero" if "division" in str(exc) else "other"


def _vm_observe(compiled, entry, args):
    """One VM execution as the ``(value, trap, output)`` triple."""
    mark = len(compiled.vm.output)
    try:
        value = compiled.call(entry, *args)
        return value, None, "".join(compiled.vm.output[mark:])
    except (bc.VMError, ResourceLimitError) as exc:
        return None, _trap_kind(exc), "".join(compiled.vm.output[mark:])


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


# ---------------------------------------------------------------------------
# byte-identity with the VM: the suite and the committed trap repros
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
def test_suite_native_matches_vm(program):
    world = compile_source(program.source)
    compiled = compile_world(world)
    module = compile_native_world(world)
    want = _vm_observe(compiled, program.entry, program.test_args)
    run = module.run(program.entry, list(program.test_args))
    assert _values_equal(run.result, want[0]), (run.result, want[0])
    assert run.trap == want[1]
    assert run.output == want[2]
    if want[1] is None and program.test_expect is not None:
        assert _values_equal(run.result, program.test_expect)


def _corpus_cases():
    for path in sorted(CORPUS.glob("*.impala")):
        lines = path.read_text().splitlines()
        meta = dict(field.split(" ", 1)
                    for field in lines[1].removeprefix("// ").split("; "))
        source = "\n".join(l for l in lines if not l.startswith("//"))
        arg_sets = [list(args) for args in pyast.literal_eval(meta["args"])]
        yield pytest.param(source, meta["entry"], arg_sets, id=path.stem)


@pytest.mark.parametrize("source,entry,arg_sets", _corpus_cases())
def test_corpus_native_matches_vm(source, entry, arg_sets):
    # Every committed trap repro was a divergence about *where* a
    # division trap fires; the native tier must agree with the VM on
    # all of them, byte for byte.
    world = compile_source(source)
    compiled = compile_world(world)
    module = compile_native_world(world)
    for args in arg_sets:
        want = _vm_observe(compiled, entry, args)
        run = module.run(entry, args)
        assert _values_equal(run.result, want[0]), (args, run, want)
        assert run.trap == want[1], (args, run, want)
        assert run.output == want[2], (args, run, want)


# ---------------------------------------------------------------------------
# trap channel, fuel, print capture
# ---------------------------------------------------------------------------


def test_native_div_trap_with_partial_output():
    src = ("fn main(a: i64) -> i64 { "
           "print_i64(a); print_char(10); 100 / (a - a) }")
    module = compile_native_world(compile_source(src))
    run = module.run("main", [5])
    assert run.result is None
    assert run.trap == "div-by-zero"
    assert run.output == "5\n"  # prints before the trap are kept


def test_native_fuel_trap():
    src = ("fn spin(i: i64) -> i64 { spin(i + 1) }\n"
           "fn main(a: i64) -> i64 { spin(a) }")
    module = compile_native_world(compile_source(src, optimize=False))
    run = module.run("main", [0], fuel=10_000)
    assert run.result is None
    assert run.trap == "step-limit"
    # an explicit fuel of 0 traps on the first entry — it must never be
    # mistaken for "use the default budget"
    zero = module.run("main", [0], fuel=0)
    assert zero.result is None and zero.trap == "step-limit"
    # fuel resets per call: the same module answers honest fuel next.
    src2 = "fn main(a: i64) -> i64 { a + 1 }"
    module2 = compile_native_world(compile_source(src2))
    assert module2.run("main", [1], fuel=10_000).result == 2


def test_native_float_prints_match_python_repr():
    # CPython's repr(float) (shortest round-trip) is the print format
    # the interpreter and VM use; the C runtime reproduces it exactly.
    src = ("fn main(a: f64) -> f64 {\n"
           "    print_f64(0.1 + 0.2);   print_char(10);\n"
           "    print_f64(1.0 / 100000.0); print_char(10);\n"
           "    print_f64(7.0 / 3.0);   print_char(10);\n"
           "    print_f64(a / a);       print_char(10);\n"
           "    a\n"
           "}")
    module = compile_native_world(compile_source(src))
    run = module.run("main", [0.0])
    want = "\n".join([repr(0.1 + 0.2), repr(1.0 / 100000.0),
                      repr(7.0 / 3.0), repr(float("nan"))]) + "\n"
    assert run.output == want
    assert run.result == 0.0


def test_native_negative_float_to_int_casts_match_vm():
    # Regression: repro_cast_f2i used to wrap negative values by adding
    # 2^64 in *double* arithmetic, which rounds to a multiple of 4096
    # (the ulp at 2^64): -1.0 became INT64_MIN, -3000.5 became -2048.
    # The wrap must happen in integer arithmetic, where it is exact.
    cases = [-1.0, -3000.5, -0.75, -4095.0, -4097.25, -2.0 ** 52 - 1.0,
             -9.1e18, -1.9e19, 3000.5, 9.3e18, float("nan")]
    for ty in ("i64", "u64", "i32", "u32", "i8"):
        src = f"fn main(a: f64) -> {ty} {{ a as {ty} }}"
        world = compile_source(src)
        compiled = compile_world(world)
        module = compile_native_world(world)
        for x in cases:
            want = _vm_observe(compiled, "main", [x])
            run = module.run("main", [x])
            assert _values_equal(run.result, want[0]), (ty, x, run, want)
            assert run.trap == want[1], (ty, x, run, want)
    # pin the exact fold.cast semantics for the worst offenders
    mod64 = compile_native_world(
        compile_source("fn main(a: f64) -> i64 { a as i64 }"))
    assert mod64.run("main", [-1.0]).result == -1
    assert mod64.run("main", [-3000.5]).result == -3000


def test_native_aggregate_constant_hardened_literals():
    # Words of a constant aggregate image go through the same hardened
    # literal hooks as scalar constants: an INT64_MIN word must not be
    # rendered as -9223372036854775808 (which C parses as negating a
    # too-big constant) and a non-finite float word must not be
    # rendered as 'inf' — both used to make the native build fail.
    src = ("fn pick(t: (i64, i64), i: i64) -> i64 "
           "{ if i == 0 { t.0 } else { t.1 } }\n"
           "fn main(i: i64) -> i64 "
           "{ pick((-9223372036854775807 - 1, 7), i) }")
    world = compile_source(src, optimize=False)
    c_source, _meta = emit_native_c(world)
    assert "(-9223372036854775807ll - 1)" in c_source
    module = compile_native_world(world)
    compiled = compile_world(compile_source(src, optimize=False))
    for i in (0, 1):
        assert module.run("main", [i]).result == compiled.call("main", i)
    # inf in a float word: must emit compilable C (the flat int64-word
    # model is numerically lossy for floats, so only compilation and a
    # clean run are asserted here)
    finf = ("fn pick(t: (f64, f64), i: i64) -> f64 "
            "{ if i == 0 { t.0 } else { t.1 } }\n"
            "fn main(i: i64) -> f64 { pick((1.0 / 0.0, 7.5), i) }")
    winf = compile_source(finf, optimize=False)
    c_inf, _ = emit_native_c(winf)
    assert "(1.0/0.0)" in c_inf
    assert compile_native_world(winf).run("main", [0]).trap is None


def test_native_float_and_bool_results():
    # unoptimized: the called helper survives as its own entry point
    src = ("fn half(a: f64) -> f64 { a / 2.0 }\n"
           "fn main(a: f64) -> f64 { half(a) + half(a) }")
    module = compile_native_world(compile_source(src, optimize=False))
    assert module.run("half", [7.0]).result == 3.5
    assert module.run("main", [7.0]).result == 7.0
    boolmod = compile_native_world(
        compile_source("fn main(a: i64) -> bool { a > 10 }"))
    assert boolmod.run("main", [11]).result is True
    assert boolmod.run("main", [3]).result is False


# ---------------------------------------------------------------------------
# driver + store
# ---------------------------------------------------------------------------


def test_store_content_addressing(tmp_path):
    world = compile_source("fn main(a: i64) -> i64 { a * 3 }")
    c_source, _meta = emit_native_c(world)
    store = NativeStore(tmp_path / "native")
    path1, key1, cached1 = store.get_or_build(c_source)
    path2, key2, cached2 = store.get_or_build(c_source)
    assert not cached1 and cached2      # second build is a store hit
    assert path1 == path2 and key1 == key2
    assert path1.exists()
    assert path1.parent.name == key1[:2]  # git-style fan-out
    # a different translation unit gets a different address
    other, _ = emit_native_c(compile_source("fn main(a: i64) -> i64 { a }"))
    _, key3, _ = store.get_or_build(other)
    assert key3 != key1


def test_build_error_diagnostics(tmp_path, monkeypatch):
    from repro.native.driver import compile_shared

    with pytest.raises(NativeBuildError) as info:
        compile_shared("this is not C\n", tmp_path / "bad.so")
    err = info.value
    assert err.stage == "compile"
    assert err.returncode != 0
    assert err.stderr  # the compiler's message is preserved
    payload = err.as_dict()
    assert payload["stage"] == "compile" and payload["command"]
    # no compiler at all -> structured "no-cc", not a stack trace
    monkeypatch.setenv("REPRO_CC", str(tmp_path / "missing-cc"))
    assert find_cc() is None
    with pytest.raises(NativeBuildError) as info:
        compile_shared("int x;\n", tmp_path / "none.so")
    assert info.value.stage == "no-cc"


def test_entry_meta_survives_name_collisions():
    # A program named like a libm symbol must not collide with the
    # runtime preamble's #includes: emitted symbols carry the rp_
    # prefix and entry_meta maps public names to wrapper symbols.
    src = ("fn pow(a: i64, b: i64) -> i64 { a * b }\n"
           "fn main(a: i64) -> i64 { pow(a, 3) }")
    # unoptimized keeps pow as a function; its declaration must not
    # clash with math.h's pow
    world = compile_source(src, optimize=False)
    c_source, meta = emit_native_c(world)
    assert "repro_run_pow" in c_source
    module = compile_native_world(world)
    assert module.run("pow", [6, 7]).result == 42
    assert module.run("main", [5]).result == 15


# ---------------------------------------------------------------------------
# tiering policy (pure state machine, no server)
# ---------------------------------------------------------------------------


def test_tiering_state_machine():
    manager = TieringManager(TieringPolicy(interp_runs=1, hot_requests=3))
    assert manager.decide("k").tier == "interp"
    assert manager.decide("k").tier == "vm"
    third = manager.decide("k")
    assert third.tier == "vm" and third.promote  # hot: compile launched
    assert not manager.decide("k").promote       # only one in flight
    manager.native_ready("k", "/tmp/x.so", {"main": {}}, cached=False)
    ready = manager.decide("k")
    assert ready.tier == "native" and ready.so_path == "/tmp/x.so"
    manager.fallback("k", "segfault in .so")
    assert manager.decide("k").tier == "vm"      # quarantined, stays vm
    assert not manager.decide("k").promote       # never retried
    snap = manager.snapshot()
    assert snap["native_fallbacks"] == 1
    assert snap["native_states"]["quarantined"] == 1


def test_tiering_step_hotness():
    manager = TieringManager(TieringPolicy(interp_runs=0, hot_requests=999,
                                           hot_steps=1000))
    assert not manager.decide("k").promote
    manager.note_steps("k", 5000)                # one expensive VM run
    assert manager.decide("k").promote


def test_tiering_profile_accumulation():
    manager = TieringManager(TieringPolicy())
    assert manager.profile_of("k") is None
    snapshot = {"version": 1, "entries": {"fact": 3}, "call_sites": [],
                "loops": [], "edges": [], "meta": {}}
    manager.note_profile("k", snapshot)
    manager.note_profile("k", snapshot)          # merged, counts summed
    manager.note_profile("k", None)              # no profile: a no-op
    manager.note_profile("k", {})
    assert manager.profile_of("k")["entries"]["fact"] == 6
    assert manager.profile_of("other") is None
    assert manager.snapshot()["profiles_noted"] == 2


def test_vm_tier_profile_feeds_pgo_native_compile(tmp_path):
    """The worker-level PGO loop: a VM-tier run ships its profile, and
    a native compile handed that profile runs a profile-guided round —
    with byte-identical observable behaviour to the static build."""
    from repro.native import DEFAULT_FUEL, NativeModule
    from repro.serve.worker import _run_vm_tier, native_compile_request

    request = {"key": "pgo-flow-test", "source": SRC_HOT, "entry": "main",
               "args": [[6], [10]], "options": None}
    result = _run_vm_tier(request)
    assert result["steps"] > 0
    profile = result["profile"]
    assert profile["entries"], "VM tier returned an empty profile"

    pgo = native_compile_request(
        {"source": SRC_HOT, "options": None,
         "native_dir": str(tmp_path / "store"), "profile": profile})
    static = native_compile_request(
        {"source": SRC_HOT, "options": None,
         "native_dir": str(tmp_path / "store")})
    assert pgo["pgo"] and not static["pgo"]
    for built in (pgo, static):
        assert Path(built["so"]).exists()
        module = NativeModule(built["so"], built["entry_meta"])
        run = module.run("main", [6], fuel=DEFAULT_FUEL)
        assert (run.result, run.trap, run.output) == (722, None, "720")


# ---------------------------------------------------------------------------
# the serve daemon: watch a program climb the tiers
# ---------------------------------------------------------------------------

SRC_HOT = ("fn fact(n: i64) -> i64 { if n <= 1 { 1 } "
           "else { n * fact(n - 1) } }\n"
           "fn main(n: i64) -> i64 { print_i64(fact(n)); fact(n) + 2 }")


class _ServerThread:
    def __init__(self, config: ServerConfig):
        self.loop = asyncio.new_event_loop()
        self.server = CompileServer(config)
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(timeout=30.0), "server failed to start"
        self.port = self.server.port

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop).result(timeout=30.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)


def _serve_config(tmp_path, **kw) -> ServerConfig:
    return ServerConfig(port=0, workers=2,
                        cache_dir=str(tmp_path / "cache"),
                        crash_dir=str(tmp_path / "crashes"),
                        tier_interp_runs=1, tier_hot_requests=2, **kw)


def test_serve_promotes_hot_program_to_native(tmp_path):
    st = _ServerThread(_serve_config(tmp_path))
    try:
        with ServeClient(port=st.port, timeout=60.0) as client:
            replies = []
            deadline = 30.0
            import time as _time
            start = _time.monotonic()
            while _time.monotonic() - start < deadline:
                reply = client.run(SRC_HOT, [[5], [10]])
                assert reply["ok"], reply
                replies.append(reply)
                if reply["tier"] == "native":
                    break
                _time.sleep(0.1)
            tiers = [r["tier"] for r in replies]
            assert tiers[0] == "interp"
            assert "vm" in tiers
            assert tiers[-1] == "native", f"never promoted: {tiers}"
            # byte-identical observations at every tier
            baseline = replies[0]["results"]
            for reply in replies[1:]:
                assert reply["results"] == baseline
            stats = client.stats()["tiering"]
            assert stats["native_compiles"] == 1
            assert stats["served_native"] >= 1
            assert stats["native_states"]["ready"] == 1
            # the .so landed in the content-addressed store
            objects = list((tmp_path / "cache" / "native").rglob("*.so"))
            assert len(objects) == 1
    finally:
        st.stop()


def test_serve_native_promotion_is_profile_guided(tmp_path):
    # interp_runs=0: every request runs on the (instrumented) VM, so by
    # the time the hot threshold trips the key has accumulated training
    # data and the background native compile is PGO.
    st = _ServerThread(ServerConfig(
        port=0, workers=2, cache_dir=str(tmp_path / "cache"),
        crash_dir=str(tmp_path / "crashes"),
        tier_interp_runs=0, tier_hot_requests=3))
    try:
        with ServeClient(port=st.port, timeout=60.0) as client:
            import time as _time
            baseline = None
            start = _time.monotonic()
            while _time.monotonic() - start < 30.0:
                reply = client.run(SRC_HOT, [[7]])
                assert reply["ok"], reply
                if baseline is None:
                    baseline = reply["results"]
                assert reply["results"] == baseline
                if reply["tier"] == "native":
                    break
                _time.sleep(0.1)
            assert reply["tier"] == "native"
            stats = client.stats()["tiering"]
            assert stats["profiles_noted"] >= 1
            assert stats["native_pgo_compiles"] == 1
    finally:
        st.stop()


def test_serve_quarantines_on_native_compile_failure(tmp_path, monkeypatch):
    # /bin/false "is" a compiler that always fails: the promotion must
    # quarantine the key back to the VM and keep serving answers.
    monkeypatch.setenv("REPRO_CC", "/bin/false")
    st = _ServerThread(_serve_config(tmp_path))
    try:
        assert st.server.tiering.policy.enabled
        with ServeClient(port=st.port, timeout=60.0) as client:
            import time as _time
            tiers = []
            start = _time.monotonic()
            while _time.monotonic() - start < 30.0:
                reply = client.run(SRC_HOT, [[4]])
                assert reply["ok"], reply
                tiers.append(reply["tier"])
                if reply["native_state"] == "quarantined":
                    break
                _time.sleep(0.1)
            assert reply["native_state"] == "quarantined"
            assert reply["tier"] == "vm"          # still serving
            assert reply["results"][0]["value"] == 26
            stats = client.stats()["tiering"]
            assert stats["native_quarantined"] == 1
            assert stats["native_compiles"] == 0
            assert "native" not in tiers
    finally:
        st.stop()


def test_serve_shed_requests_do_not_advance_hotness(tmp_path):
    # A shed (overloaded) request is never served: it must not bump the
    # per-tier counters, advance per-key hotness, or launch a compile.
    st = _ServerThread(_serve_config(tmp_path, max_pending=0))
    try:
        with ServeClient(port=st.port, timeout=60.0) as client:
            for _ in range(5):
                reply = client.request({"op": "run", "source": SRC_HOT,
                                        "entry": "main", "args": [[3]]})
                assert not reply["ok"]
                assert reply["error"]["code"] == "overloaded"
            stats = client.stats()["tiering"]
            assert stats["run_requests"] == 0
            assert stats["keys"] == 0
            assert stats["native_states"]["pending"] == 0
    finally:
        st.stop()


def test_serve_run_validation(tmp_path):
    st = _ServerThread(_serve_config(tmp_path))
    try:
        with ServeClient(port=st.port, timeout=60.0) as client:
            reply = client.request({"op": "run", "source": SRC_HOT})
            assert not reply["ok"]
            assert reply["error"]["code"] == "bad-request"
            assert "args" in reply["error"]["message"]
            reply = client.request({"op": "run", "source": SRC_HOT,
                                    "args": [["nope"]]})
            assert not reply["ok"] and reply["error"]["code"] == "bad-request"
    finally:
        st.stop()

"""Pass-level IR verification over the whole program suite.

``OptimizeOptions(verify_each_pass=True)`` runs the full verifier after
every pipeline phase and asserts control-flow form at pipeline exit.
The acceptance bar from the ISSUE: the entire ``programs/suite.py``
must survive checked builds under both the static and the PGO
pipelines, with no CFF residual — and a pass that corrupts the IR must
be *attributed* (named phase + round) by :class:`PassVerifyError`.
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.backend.interp import Interpreter
from repro.profile.driver import compile_profiled
from repro.programs.suite import ALL_PROGRAMS
from repro.transform.pipeline import (
    OptimizeOptions,
    PassVerifyError,
    optimize,
)

CHECKED = OptimizeOptions(verify_each_pass=True)
# Attribution via a *raised* PassVerifyError needs fail-fast mode; the
# default (non-strict) pipeline instead quarantines the offender — that
# behaviour is covered by test_pipeline_faults.py.
CHECKED_STRICT = OptimizeOptions(verify_each_pass=True, strict=True)


class TestStaticPipelineChecked:
    def test_whole_suite_verifies_after_every_pass(self):
        for program in ALL_PROGRAMS:
            world = compile_source(program.source, optimize=False)
            stats = optimize(world, options=CHECKED)
            assert stats.cff_residual == [], program.name
            result = Interpreter(world).call(program.entry,
                                             *program.test_args)
            if program.test_expect is not None:
                assert result == program.test_expect, program.name

    def test_verification_does_not_change_recorded_phases(self):
        # ``verify_each_pass`` must be observation-only: the phase log
        # (which test_pipeline_stats pins to 1 + 8*rounds entries) has
        # to be identical with and without checking.
        source = ALL_PROGRAMS[0].source
        plain_world = compile_source(source, optimize=False)
        plain = optimize(plain_world, options=OptimizeOptions())
        checked_world = compile_source(source, optimize=False)
        checked = optimize(checked_world, options=CHECKED)
        assert checked.phases() == plain.phases()

    def test_cff_residual_untouched_without_checking(self):
        world = compile_source(ALL_PROGRAMS[0].source, optimize=False)
        stats = optimize(world, options=OptimizeOptions())
        assert stats.cff_residual == []


class TestPGOPipelineChecked:
    def test_whole_suite_verifies_under_pgo(self):
        for program in ALL_PROGRAMS:
            world = compile_source(program.source, optimize=False)

            def workload(compiled, program=program):
                compiled.call(program.entry, *program.test_args)

            compiled, _profile, stats = compile_profiled(
                world, workload, options=CHECKED)
            assert stats["static"].cff_residual == [], program.name
            assert stats["pgo"].cff_residual == [], program.name
            result = Interpreter(world).call(program.entry,
                                             *program.test_args)
            if program.test_expect is not None:
                assert result == program.test_expect, program.name


class TestAttribution:
    def test_corrupting_pass_is_named(self, monkeypatch):
        """Pruning a still-used continuation inside the inliner must be
        attributed to the ``inline`` phase, not merely detected later."""
        import repro.transform.inliner as inliner

        original = inliner.inline_small_functions

        def corrupting(world, **kwargs):
            stats = original(world, **kwargs)
            for cont in list(world.continuations()):
                if (cont.has_body() and not cont.is_external
                        and not cont.is_intrinsic() and cont.uses):
                    live = set(world.continuations()) - {cont}
                    world._prune_continuations(live)
                    return stats
            return stats

        monkeypatch.setattr(inliner, "inline_small_functions", corrupting)

        caught = None
        for program in ALL_PROGRAMS:
            world = compile_source(program.source, optimize=False)
            try:
                optimize(world, options=CHECKED_STRICT)
            except PassVerifyError as exc:
                caught = exc
                break
        assert caught is not None, (
            "no suite program had a prunable continuation; corruption "
            "was never triggered")
        assert caught.phase == "inline"
        assert caught.round >= 1
        assert "inline" in str(caught)

    def test_unchecked_pipeline_misses_the_corruption(self, monkeypatch):
        # The same sabotage without ``verify_each_pass`` does not raise
        # ``PassVerifyError`` — which is exactly why the option exists.
        import repro.transform.inliner as inliner

        original = inliner.inline_small_functions

        def corrupting(world, **kwargs):
            stats = original(world, **kwargs)
            for cont in list(world.continuations()):
                if (cont.has_body() and not cont.is_external
                        and not cont.is_intrinsic() and cont.uses):
                    live = set(world.continuations()) - {cont}
                    world._prune_continuations(live)
                    return stats
            return stats

        monkeypatch.setattr(inliner, "inline_small_functions", corrupting)
        for program in ALL_PROGRAMS:
            world = compile_source(program.source, optimize=False)
            try:
                optimize(world, options=OptimizeOptions(strict=True))
            except PassVerifyError:  # pragma: no cover - would be a bug
                pytest.fail("unchecked pipeline raised PassVerifyError")
            except Exception:
                # downstream passes may crash on the corrupt IR; that is
                # allowed — the point is the *attribution* is absent
                break

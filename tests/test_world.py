"""Unit tests for the world: hash-consing (GVN) and construction folding."""

import pytest
from hypothesis import given, strategies as st

from repro.core import types as ct
from repro.core.defs import Intrinsic
from repro.core.primops import (
    ArithKind,
    ArithOp,
    Bottom,
    Cmp,
    CmpRel,
    Insert,
    Literal,
    Select,
)
from repro.core.world import World

from .helpers import FN_I64


@pytest.fixture()
def world():
    return World("test")


@pytest.fixture()
def xy(world):
    f = world.continuation(ct.fn_type((ct.I64, ct.I64)), "f")
    return f.params


class TestHashConsing:
    def test_literals_unique(self, world):
        assert world.literal(ct.I64, 7) is world.literal(ct.I64, 7)
        assert world.literal(ct.I64, 7) is not world.literal(ct.I32, 7)

    def test_literal_canonicalized(self, world):
        assert world.literal(ct.I8, -1) is world.literal(ct.I8, 255)
        assert world.literal(ct.I8, -1).public_value() == -1
        assert world.literal(ct.U8, 255).public_value() == 255

    def test_arith_gvn(self, world, xy):
        x, y = xy
        assert world.add(x, y) is world.add(x, y)
        assert world.add(x, y) is not world.sub(x, y)

    def test_commutative_normalization(self, world, xy):
        x, _ = xy
        c = world.literal(ct.I64, 3)
        assert world.add(c, x) is world.add(x, c)
        assert world.mul(c, x) is world.mul(x, c)
        # Non-commutative ops keep operand order.
        assert world.sub(c, x) is not world.sub(x, c)

    def test_cmp_swap_normalization(self, world, xy):
        x, _ = xy
        c = world.literal(ct.I64, 3)
        # 3 < x normalizes to x > 3
        node = world.lt(c, x)
        assert isinstance(node, Cmp)
        assert node.rel is CmpRel.GT
        assert node.lhs is x

    def test_gvn_stats(self, world, xy):
        x, y = xy
        before = world.stats.gvn_hits
        world.mul(x, y)
        world.mul(x, y)
        assert world.stats.gvn_hits == before + 1


class TestConstantFolding:
    @given(a=st.integers(-100, 100), b=st.integers(-100, 100))
    def test_fold_add(self, a, b):
        world = World()
        got = world.add(world.literal(ct.I64, a), world.literal(ct.I64, b))
        assert isinstance(got, Literal)
        assert got.public_value() == a + b

    def test_fold_through_chain(self, world):
        one = world.literal(ct.I64, 1)
        two = world.add(one, one)
        four = world.mul(two, two)
        assert isinstance(four, Literal) and four.value == 4

    def test_div_by_zero_not_folded(self, world):
        node = world.div(world.literal(ct.I64, 1), world.literal(ct.I64, 0))
        assert isinstance(node, ArithOp)  # the trap stays in the program

    def test_bottom_propagates(self, world, xy):
        x, _ = xy
        bot = world.bottom(ct.I64)
        assert isinstance(world.add(x, bot), Bottom)
        assert isinstance(world.eq(bot, x), Bottom)
        assert isinstance(world.cast(ct.F64, bot), Bottom)


class TestAlgebraicSimplification:
    def test_add_zero(self, world, xy):
        x, _ = xy
        assert world.add(x, world.zero(ct.I64)) is x
        assert world.add(world.zero(ct.I64), x) is x

    def test_sub_self_and_zero(self, world, xy):
        x, _ = xy
        assert world.sub(x, world.zero(ct.I64)) is x
        assert world.sub(x, x) is world.zero(ct.I64)

    def test_mul_identities(self, world, xy):
        x, _ = xy
        assert world.mul(x, world.one(ct.I64)) is x
        assert world.mul(x, world.zero(ct.I64)) is world.zero(ct.I64)

    def test_float_zero_not_removed(self, world):
        # -0.0 + 0.0 == 0.0, so x + 0.0 is NOT an identity on floats.
        f = world.continuation(ct.fn_type((ct.F64,)), "g")
        x = f.params[0]
        node = world.add(x, world.literal(ct.F64, 0.0))
        assert isinstance(node, ArithOp)

    def test_bit_identities(self, world, xy):
        x, _ = xy
        zero = world.zero(ct.I64)
        ones = world.literal(ct.I64, -1)
        assert world.and_(x, zero) is zero
        assert world.and_(x, ones) is x
        assert world.and_(x, x) is x
        assert world.or_(x, zero) is x
        assert world.or_(x, x) is x
        assert world.xor(x, x) is zero
        assert world.xor(x, zero) is x
        assert world.shl(x, zero) is x

    def test_cmp_self(self, world, xy):
        x, _ = xy
        assert world.eq(x, x) is world.true_()
        assert world.ne(x, x) is world.false_()
        assert world.le(x, x) is world.true_()
        assert world.lt(x, x) is world.false_()

    def test_float_cmp_self_not_folded(self, world):
        f = world.continuation(ct.fn_type((ct.F64,)), "g")
        x = f.params[0]
        assert isinstance(world.eq(x, x), Cmp)  # NaN != NaN

    def test_double_negation(self, world):
        f = world.continuation(ct.fn_type((ct.BOOL,)), "g")
        b = f.params[0]
        assert world.not_(world.not_(b)) is b


class TestSelect:
    def test_literal_cond(self, world, xy):
        x, y = xy
        assert world.select(world.true_(), x, y) is x
        assert world.select(world.false_(), x, y) is y

    def test_same_arms(self, world, xy):
        x, _ = xy
        f = world.continuation(ct.fn_type((ct.BOOL,)), "g")
        assert world.select(f.params[0], x, x) is x

    def test_negated_cond_swaps(self, world, xy):
        x, y = xy
        f = world.continuation(ct.fn_type((ct.BOOL,)), "g")
        c = f.params[0]
        assert world.select(world.not_(c), x, y) is world.select(c, y, x)

    def test_bool_shortcuts(self, world):
        f = world.continuation(ct.fn_type((ct.BOOL,)), "g")
        c = f.params[0]
        assert world.select(c, world.true_(), world.false_()) is c
        assert world.select(c, world.false_(), world.true_()) is world.not_(c)


class TestAggregates:
    def test_extract_of_tuple(self, world, xy):
        x, y = xy
        t = world.tuple_((x, y))
        assert world.extract(t, 0) is x
        assert world.extract(t, 1) is y

    def test_extract_of_insert(self, world, xy):
        x, y = xy
        arr = world.definite_array(ct.I64, [world.zero(ct.I64)] * 3)
        ins = world.insert(arr, 1, x)
        assert world.extract(ins, 1) is x
        assert world.extract(ins, 0) is world.zero(ct.I64)

    def test_insert_into_literal_array(self, world, xy):
        x, _ = xy
        arr = world.definite_array(ct.I64, [world.zero(ct.I64)] * 2)
        ins = world.insert(arr, 0, x)
        # folded into a fresh array value
        assert not isinstance(ins, Insert)
        assert world.extract(ins, 0) is x

    def test_dynamic_index_not_folded(self, world, xy):
        x, y = xy
        arr = world.definite_array(ct.I64, [x, x, x])
        got = world.extract(arr, y)
        assert not isinstance(got, Literal)

    def test_out_of_bounds_literal_index_is_bottom(self, world, xy):
        x, _ = xy
        arr = world.definite_array(ct.I64, [x, x])
        assert isinstance(world.extract(arr, 5), Bottom)

    def test_insert_chain_same_index(self, world, xy):
        x, y = xy
        f = world.continuation(ct.fn_type((ct.definite_array_type(ct.I64, 2),)), "g")
        base = f.params[0]
        ins1 = world.insert(base, 0, x)
        ins2 = world.insert(ins1, 0, y)
        # the overwritten insert is elided
        assert ins2.op(0) is base


class TestMemory:
    def test_store_load_forwarding(self, world):
        f = world.continuation(ct.fn_type((ct.MEM, ct.I64)), "g")
        mem0, x = f.params
        mem1, frame = world.enter(mem0)
        ptr = world.slot(ct.I64, frame)
        mem2 = world.store(mem1, ptr, x)
        mem3, value = world.load(mem2, ptr)
        assert value is x
        assert mem3 is mem2

    def test_dead_store_elimination(self, world):
        f = world.continuation(ct.fn_type((ct.MEM, ct.I64, ct.I64)), "g")
        mem0, x, y = f.params
        mem1, frame = world.enter(mem0)
        ptr = world.slot(ct.I64, frame)
        s1 = world.store(mem1, ptr, x)
        s2 = world.store(s1, ptr, y)
        # the first store is dead: s2 rebuilt directly over mem1
        assert s2.mem is mem1

    def test_slots_are_unique(self, world):
        f = world.continuation(ct.fn_type((ct.MEM,)), "g")
        _, frame = world.enter(f.params[0])
        assert world.slot(ct.I64, frame) is not world.slot(ct.I64, frame)

    def test_immutable_global_load_folds(self, world):
        init = world.literal(ct.I64, 42)
        g = world.global_(init, is_mutable=False)
        f = world.continuation(ct.fn_type((ct.MEM,)), "g")
        mem, value = world.load(f.params[0], g)
        assert value is init

    def test_mutable_global_load_not_folded(self, world):
        init = world.literal(ct.I64, 42)
        g = world.global_(init, is_mutable=True)
        f = world.continuation(ct.fn_type((ct.MEM,)), "g")
        _, value = world.load(f.params[0], g)
        assert value is not init

    def test_mutable_globals_distinct(self, world):
        init = world.literal(ct.I64, 0)
        assert world.global_(init) is not world.global_(init)
        assert world.global_(init, is_mutable=False) is world.global_(
            init, is_mutable=False
        )


class TestEvalMarkers:
    def test_run_idempotent(self, world):
        f = world.continuation(FN_I64, "f")
        assert world.run(world.run(f)) is world.run(f)

    def test_hlt_wins(self, world):
        f = world.continuation(FN_I64, "f")
        assert world.hlt(world.run(f)).value is f
        assert world.run(world.hlt(f)) is world.hlt(f)


class TestJumpFolding:
    def test_branch_on_literal_becomes_direct(self, world):
        f = world.continuation(ct.fn_type((ct.MEM,)), "f")
        t = world.basic_block((ct.MEM,), "t")
        e = world.basic_block((ct.MEM,), "e")
        world.jump(f, world.branch(), (f.params[0], world.true_(), t, e))
        assert f.callee is t
        assert f.args == (f.params[0],)

    def test_branch_same_targets_becomes_direct(self, world):
        f = world.continuation(ct.fn_type((ct.MEM, ct.BOOL)), "f")
        t = world.basic_block((ct.MEM,), "t")
        world.jump(f, world.branch(), (f.params[0], f.params[1], t, t))
        assert f.callee is t

    def test_branch_dynamic_cond_stays(self, world):
        f = world.continuation(ct.fn_type((ct.MEM, ct.BOOL)), "f")
        t = world.basic_block((ct.MEM,), "t")
        e = world.basic_block((ct.MEM,), "e")
        world.jump(f, world.branch(), (f.params[0], f.params[1], t, e))
        assert f.callee.intrinsic == Intrinsic.BRANCH


class TestFoldingDisabled:
    def test_no_fold_when_disabled(self):
        world = World(folding=False)
        node = world.add(world.literal(ct.I64, 1), world.literal(ct.I64, 2))
        assert isinstance(node, ArithOp)

    def test_gvn_still_active(self):
        world = World(folding=False)
        a = world.literal(ct.I64, 1)
        b = world.literal(ct.I64, 2)
        assert world.add(a, b) is world.add(a, b)


class TestRebuild:
    def test_rebuild_refolds(self, world, xy):
        x, y = xy
        node = world.add(x, y)
        rebuilt = world.rebuild(node, (world.literal(ct.I64, 2),
                                       world.literal(ct.I64, 3)))
        assert isinstance(rebuilt, Literal) and rebuilt.value == 5

    def test_rebuild_preserves_slot_identity(self, world):
        f = world.continuation(ct.fn_type((ct.MEM, ct.MEM)), "g")
        _, frame = world.enter(f.params[0])
        slot = world.slot(ct.I64, frame)
        same = world.rebuild(slot, (frame,))
        assert same is slot
        _, frame2 = world.enter(f.params[1])
        other = world.rebuild(slot, (frame2,))
        assert other is not slot
        assert other.slot_id == slot.slot_id

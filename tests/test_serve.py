"""Compile-service tests: protocol edges, caching, crash isolation.

One real :class:`~repro.serve.server.CompileServer` runs on an event
loop in a background thread for the whole module (module-scoped
fixture); tests talk to it over real sockets with the blocking
client.  Unit tests for the cache key and the worker pool need no
server and run standalone.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.serve.cache import ArtifactCache, cache_key
from repro.serve.client import ServeClient
from repro.serve.protocol import MAX_LINE_BYTES
from repro.serve.server import CompileServer, ServerConfig
from repro.serve.worker import compile_request

SRC = "fn main(a: i64) -> i64 { a * a + 1 }"


class _ServerThread:
    """The server plus the loop thread that runs it."""

    def __init__(self, tmp_path):
        self.loop = asyncio.new_event_loop()
        self.server = CompileServer(ServerConfig(
            port=0, workers=2,
            cache_dir=str(tmp_path / "cache"),
            crash_dir=str(tmp_path / "crashes"),
            max_pending=8, request_timeout=60.0))
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(timeout=30.0), "server failed to start"
        self.port = self.server.port

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop).result(timeout=30.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)

    def client(self, **kw) -> ServeClient:
        return ServeClient(port=self.port, timeout=60.0, **kw)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    st = _ServerThread(tmp_path_factory.mktemp("serve"))
    yield st
    st.stop()


# ---------------------------------------------------------------------------
# happy path + caching
# ---------------------------------------------------------------------------


def test_compile_and_cache_roundtrip(served):
    with served.client() as client:
        cold = client.compile(SRC, opt="static", request_id="c1")
        assert cold["ok"] and cold["cached"] is False
        assert cold["id"] == "c1"
        art = cold["artifacts"]
        assert art["ir"] and art["c"] and art["bytecode"]
        assert art["stats"]["rounds"] >= 1
        assert art["stats"]["timings"]  # per-phase wall-clock present

        warm = client.compile(SRC, opt="static")
        assert warm["ok"] and warm["cached"] == "memory"
        assert warm["key"] == cold["key"]
        assert warm["artifacts"] == art


def test_disk_tier_survives_memory_eviction(served):
    with served.client() as client:
        reply = client.compile(SRC + " // disk", opt="static")
        assert reply["ok"]
        # Drop the in-memory tier; the object store must still hit.
        served.server.cache._memory.clear()
        again = client.compile(SRC + " // disk", opt="static")
        assert again["ok"] and again["cached"] == "disk"
        assert again["artifacts"] == reply["artifacts"]


def test_artifacts_match_direct_compile(served):
    """Served bytes == in-process compile, per level (acceptance S1)."""
    from repro.programs.suite import by_name

    program = by_name("pow")
    with served.client() as client:
        for opt in ("none", "static", "pgo"):
            request = {"op": "compile", "source": program.source,
                       "opt": opt}
            if opt == "pgo":
                request["entry"] = program.entry
                request["train_args"] = [list(program.test_args)]
            reply = client.request(request)
            assert reply["ok"], reply
            direct = compile_request(dict(request))
            for artifact in ("ir", "c", "bytecode"):
                assert reply["artifacts"][artifact] == direct[artifact], \
                    (program.name, opt, artifact)


def test_ping_and_stats(served):
    with served.client() as client:
        assert client.ping()["pong"] is True
        stats = client.stats()
        assert stats["ok"]
        assert stats["counters"]["requests_total"] >= 1
        assert "hit_rate" in stats["cache"]
        assert "request" in stats["latency"]
        # Phase timings aggregated from PipelineStats of past compiles.
        assert "inline" in stats["pipeline_phase_seconds"]


# ---------------------------------------------------------------------------
# protocol edges
# ---------------------------------------------------------------------------


def test_malformed_json_gets_structured_error(served):
    with served.client() as client:
        client.connect()
        client._sock.sendall(b"{definitely not json\n")
        reply = json.loads(client._read_line())
        assert reply["ok"] is False
        assert reply["error"]["code"] == "malformed-json"
        # The connection survives a malformed line.
        assert client.ping()["ok"]


def test_non_object_json_rejected(served):
    with served.client() as client:
        client.connect()
        client._sock.sendall(b"[1, 2, 3]\n")
        reply = json.loads(client._read_line())
        assert reply["error"]["code"] == "malformed-json"


def test_oversized_request_is_shed(served):
    with served.client() as client:
        client.connect()
        blob = b'{"op": "compile", "source": "' + \
            b"x" * (MAX_LINE_BYTES + 1024) + b'"}\n'
        client._sock.sendall(blob)
        reply = json.loads(client._read_line())
        assert reply["error"]["code"] == "oversized"


def test_mid_request_disconnect_leaves_server_healthy(served):
    raw = socket.create_connection(("127.0.0.1", served.port), timeout=10)
    raw.sendall(b'{"op": "compile", "source": "fn main(')  # no newline
    raw.close()
    with served.client() as client:
        assert client.ping()["ok"]


def test_bad_requests(served):
    with served.client() as client:
        # unknown op
        assert client.request({"op": "nope"})["error"]["code"] == \
            "bad-request"
        # missing source
        assert client.request({"op": "compile"})["error"]["code"] == \
            "bad-request"
        # bad opt level
        reply = client.compile(SRC, opt="turbo")
        assert reply["error"]["code"] == "bad-request"
        # pgo without a workload or profile
        reply = client.compile(SRC, opt="pgo")
        assert reply["error"]["code"] == "bad-request"
        # unknown options field must not poison the cache key
        reply = client.compile(SRC, options={"warp_factor": 9})
        assert reply["error"]["code"] == "bad-request"
        assert "warp_factor" in reply["error"]["message"]


def test_compile_error_is_not_a_crash(served):
    with served.client() as client:
        reply = client.compile("fn main(  broken")
        assert reply["error"]["code"] == "compile-error"
        assert reply["error"]["kind"] == "ParseError"
        assert client.ping()["ok"]


# ---------------------------------------------------------------------------
# single-flight coalescing
# ---------------------------------------------------------------------------


def _slow_stub_handler(request):
    """Pool handler for the coalescing test: compiles take a while."""
    time.sleep(1.0)
    return {"ir": f"stub({request['source']})", "c": None,
            "bytecode": None, "stats": None}


def test_duplicate_inflight_requests_coalesce(tmp_path):
    """Two identical in-flight requests compile exactly once.

    Real compiles finish in tens of milliseconds — far too fast to
    overlap deterministically over sockets — so this drives the
    server's dispatch path directly with a deliberately slow worker.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.core.pool import WorkerPool
    from repro.serve.protocol import encode_message

    async def scenario():
        server = CompileServer(ServerConfig(
            cache_dir=str(tmp_path / "cache"),
            crash_dir=str(tmp_path / "crashes")))
        server.pool = WorkerPool(_slow_stub_handler, size=2)
        server._executor = ThreadPoolExecutor(max_workers=4)
        try:
            line = encode_message(
                {"op": "compile", "source": SRC, "opt": "static"})
            lead_task = asyncio.create_task(server._dispatch(line))
            await asyncio.sleep(0.3)  # lead is now inside the worker
            assert len(server._inflight) == 1
            join = await server._dispatch(line)
            lead = await lead_task
            assert lead["ok"] and join["ok"]
            assert lead["key"] == join["key"]
            assert join["artifacts"] == lead["artifacts"]
            # Exactly one of them actually compiled.
            assert lead["coalesced"] is False
            assert join["coalesced"] is True
            assert server.metrics.counters["coalesced"] == 1
            # And the single result landed in the cache.
            warm = await server._dispatch(line)
            assert warm["cached"] == "memory"
        finally:
            await server.stop()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# crash isolation
# ---------------------------------------------------------------------------


def test_worker_kill_yields_bundle_and_server_survives(served):
    with served.client() as client:
        before = client.stats()["worker_crashes"]
        reply = client.compile(
            SRC + "\n// kill-test", opt="static",
            fault={"mode": "kill", "target": "inline"})
        assert reply["ok"] is False
        error = reply["error"]
        assert error["code"] == "worker-crash"
        assert error["exitcode"] == -9
        bundle = error["crash_bundle"]
        assert bundle and "WorkerCrash" in bundle
        report = json.loads(
            (__import__("pathlib").Path(bundle) / "report.json").read_text())
        assert report["request"]["source"].startswith("fn main")
        # The seat respawned; the very next compile works.
        after = client.compile(SRC, opt="static")
        assert after["ok"]
        assert client.stats()["worker_crashes"] == before + 1


def test_fault_requests_bypass_the_cache(served):
    with served.client() as client:
        clean = client.compile(SRC + "\n// fault-cache", opt="static")
        assert clean["ok"] and clean["cached"] is False
        # An injected (recovered) fault compiles degraded artifacts;
        # they must not be served to clean requests.
        faulty = client.compile(
            SRC + "\n// fault-cache", opt="static",
            fault={"mode": "raise", "target": "inline"})
        assert faulty["ok"]
        assert faulty["artifacts"]["stats"]["rollbacks"] >= 1
        again = client.compile(SRC + "\n// fault-cache", opt="static")
        assert again["ok"] and again["artifacts"] == clean["artifacts"]


# ---------------------------------------------------------------------------
# unit: cache key and store
# ---------------------------------------------------------------------------


def test_cache_key_is_semantic():
    base = {"op": "compile", "source": SRC, "opt": "static", "options": {}}
    key = cache_key(base)
    assert key == cache_key({**base})
    assert key != cache_key({**base, "source": SRC + " "})
    assert key != cache_key({**base, "opt": "none"})
    assert key != cache_key({**base, "options": {"max_rounds": 2}})
    # Defaults spelled out == defaults omitted.
    assert key == cache_key({**base, "options": {"max_rounds": 8}})
    # Operational knobs don't fragment the cache.
    assert key == cache_key(
        {**base, "options": {"crash_dir": "/elsewhere"}})


def test_cache_key_pgo_profile_material():
    base = {"op": "compile", "source": SRC, "opt": "pgo",
            "options": {}, "entry": "main", "train_args": [[3]]}
    assert cache_key(base) != cache_key({**base, "train_args": [[4]]})
    assert cache_key(base) != cache_key(
        {**base, "opt": "static"})


def test_artifact_cache_lru_and_disk(tmp_path):
    cache = ArtifactCache(tmp_path / "store", memory_entries=2)
    for index in range(3):
        cache.put(f"k{index}", {"n": index})
    assert len(cache._memory) == 2  # k0 evicted from memory...
    entry, tier = cache.get("k0")
    assert entry == {"n": 0} and tier == "disk"  # ...but not from disk
    entry, tier = cache.get("k2")
    assert tier == "memory"
    assert cache.stats()["hit_rate"] == 1.0

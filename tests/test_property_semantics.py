"""Property-based semantic preservation.

Hypothesis generates random (but well-typed) Impala-lite programs from
a small expression grammar; every program must produce identical
results on: the unoptimized interpreter, the optimized interpreter,
the bytecode VM, and the SSA baseline — including identical trapping
behaviour (division by zero).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import compile_source
from repro.backend.codegen import compile_world
from repro.backend.interp import Interpreter, InterpError
from repro.backend.bytecode import VMError
from repro.baselines.ssa import CompiledSSA, compile_source_ssa

# ---------------------------------------------------------------------------
# expression generator: i64 expressions over variables a, b, c
# ---------------------------------------------------------------------------

VARS = ("a", "b", "c")


def _binop(children):
    ops = st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^"])
    return st.tuples(ops, children, children).map(
        lambda t: f"({t[1]} {t[0]} {t[2]})"
    )


def _cond(children):
    rel = st.sampled_from(["<", "<=", "==", "!=", ">", ">="])
    return st.tuples(rel, children, children, children, children).map(
        lambda t: f"(if {t[1]} {t[0]} {t[2]} {{ {t[3]} }} else {{ {t[4]} }})"
    )


exprs = st.recursive(
    st.sampled_from(VARS) | st.integers(-50, 50).map(str),
    lambda children: _binop(children) | _cond(children),
    max_leaves=20,
)


@st.composite
def programs(draw):
    body = draw(exprs)
    loop_var = draw(st.sampled_from(["a", "b"]))
    loop_expr = draw(exprs)
    return f"""
fn main(a: i64, b: i64, c: i64) -> i64 {{
    let mut acc = 0;
    for i in 0..(({loop_var} & 7) + 1) {{
        acc += {loop_expr};
        acc ^= i;
    }}
    acc + {body}
}}
"""


class Trap(Exception):
    pass


def _run(fn, *args):
    try:
        return fn(*args)
    except (InterpError, VMError):
        return "<trap>"


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(source=programs(), a=st.integers(-100, 100),
       b=st.integers(-100, 100), c=st.integers(-100, 100))
def test_random_programs_agree_everywhere(source, a, b, c):
    unopt = compile_source(source, optimize=False)
    reference = _run(Interpreter(unopt).call, "main", a, b, c)

    opt = compile_source(source)
    assert _run(Interpreter(opt).call, "main", a, b, c) == reference

    compiled = compile_world(opt)
    assert _run(compiled.call, "main", a, b, c) == reference

    ssa = CompiledSSA(compile_source_ssa(source))
    assert _run(ssa.call, "main", a, b, c) == reference


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(source=programs(), a=st.integers(-20, 20))
def test_folding_off_agrees(source, a):
    reference = _run(
        Interpreter(compile_source(source, optimize=False)).call,
        "main", a, 3, 5,
    )
    nofold = compile_source(source, optimize=False, folding=False)
    assert _run(Interpreter(nofold).call, "main", a, 3, 5) == reference


# ---------------------------------------------------------------------------
# arithmetic-only agreement between the VM's fast paths and fold
# ---------------------------------------------------------------------------

from repro.backend import bytecode as bc
from repro.core import fold
from repro.core import types as ct
from repro.core.primops import ArithKind, CmpRel


@given(kind=st.sampled_from(list(ArithKind)),
       prim=st.sampled_from([ct.I8, ct.I32, ct.I64, ct.U8, ct.U32, ct.U64]),
       a=st.integers(0, 2**64 - 1), b=st.integers(0, 2**64 - 1))
def test_vm_fast_arith_matches_fold(kind, prim, a, b):
    a &= (1 << prim.bitwidth) - 1
    b &= (1 << prim.bitwidth) - 1
    fast = bc.arith_fn(kind, prim)
    try:
        expected = fold.arith(kind, prim, a, b)
    except fold.EvalError:
        with pytest.raises(bc.VMError):
            fast(a, b)
        return
    assert fast(a, b) == expected


@given(rel=st.sampled_from(list(CmpRel)),
       prim=st.sampled_from([ct.I8, ct.I64, ct.U8, ct.U64, ct.BOOL]),
       a=st.integers(0, 2**64 - 1), b=st.integers(0, 2**64 - 1))
def test_vm_fast_cmp_matches_fold(rel, prim, a, b):
    mask = (1 << prim.bitwidth) - 1
    a, b = a & mask, b & mask
    if prim.is_bool:
        a, b = bool(a), bool(b)
    assert bc.cmp_fn(rel, prim)(a, b) == fold.compare(rel, prim, a, b)

"""Tests for CFG recovery, dominance, loop forest, and scheduling."""

import pytest

from repro.core import types as ct
from repro.core.cfg import CFG, ExitNode
from repro.core.domtree import DomTree
from repro.core.looptree import LoopTree
from repro.core.schedule import Placement, Schedule
from repro.core.scope import Scope
from repro.core.world import World

from .helpers import FN_I64, make_fib, make_loop_sum


@pytest.fixture()
def world():
    return World("test")


def names(nodes):
    return [getattr(n, "name", "EXIT") for n in nodes]


class TestCFG:
    def test_diamond(self, world):
        f = world.continuation(ct.fn_type((ct.MEM, ct.BOOL, RET_BOOL)), "f")
        mem, cond, ret = f.params
        t = world.basic_block((ct.MEM,), "t")
        e = world.basic_block((ct.MEM,), "e")
        join = world.basic_block((ct.MEM, ct.BOOL), "join")
        world.jump(f, world.branch(), (mem, cond, t, e))
        world.jump(t, join, (t.params[0], world.true_()))
        world.jump(e, join, (e.params[0], world.false_()))
        world.jump(join, ret, (join.params[0], join.params[1]))
        cfg = CFG(Scope(f))
        assert names(cfg.succs(f)) == ["t", "e"]
        assert names(cfg.succs(t)) == ["join"]
        assert names(cfg.preds(join)) == ["t", "e"]
        assert isinstance(cfg.succs(join)[0], ExitNode)

    def test_rpo_starts_at_entry(self, world):
        fib = make_fib(world)
        cfg = CFG(Scope(fib))
        assert cfg.nodes()[0] is fib

    def test_call_return_edges(self, world):
        fib = make_fib(world)
        cfg = CFG(Scope(fib))
        by_name = {c.name: c for c in cfg.continuations()}
        # else calls fib passing k1: edge else -> k1 (call-return)
        assert "k1" in names(cfg.succs(by_name["else"]))
        assert "k2" in names(cfg.succs(by_name["k1"]))

    def test_unreachable_block_not_in_cfg(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        dead = world.basic_block((ct.MEM,), "dead")
        world.jump(dead, ret, (dead.params[0], x))  # uses f's params
        world.jump(f, ret, (mem, x))
        cfg = CFG(Scope(f))
        assert dead in Scope(f)
        assert dead not in cfg


RET_BOOL = ct.fn_type((ct.MEM, ct.BOOL))


class TestDomTree:
    def test_dominance_basics(self, world):
        fib = make_fib(world)
        cfg = CFG(Scope(fib))
        dom = DomTree(cfg)
        by_name = {c.name: c for c in cfg.continuations()}
        assert dom.idom(by_name["then"]) is fib
        assert dom.dominates(fib, by_name["k2"])
        assert not dom.dominates(by_name["then"], by_name["else"])
        assert dom.dominates(by_name["else"], by_name["k1"])

    def test_dominates_is_reflexive(self, world):
        fib = make_fib(world)
        cfg = CFG(Scope(fib))
        dom = DomTree(cfg)
        for node in cfg.nodes():
            assert dom.dominates(node, node)

    def test_dominance_matches_path_definition(self, world):
        """a dom b iff removing a disconnects b from the entry."""
        loop = make_loop_sum(world)
        cfg = CFG(Scope(loop))
        dom = DomTree(cfg)

        def reaches_without(target, removed):
            seen = set()
            stack = [cfg.entry]
            while stack:
                node = stack.pop()
                if node is removed or node in seen:
                    continue
                seen.add(node)
                if node is target:
                    return True
                stack.extend(cfg.succs(node))
            return False

        nodes = cfg.nodes()
        for a in nodes:
            for b in nodes:
                if a is b or b is cfg.entry:
                    continue
                expected = not reaches_without(b, a)
                assert dom.dominates(a, b) == expected, (a, b)

    def test_lca(self, world):
        fib = make_fib(world)
        cfg = CFG(Scope(fib))
        dom = DomTree(cfg)
        by_name = {c.name: c for c in cfg.continuations()}
        assert dom.lca(by_name["then"], by_name["else"]) is fib
        assert dom.lca(by_name["k1"], by_name["k2"]) is by_name["k1"]


class TestLoopTree:
    def test_simple_loop_depths(self, world):
        loop = make_loop_sum(world)
        cfg = CFG(Scope(loop))
        tree = LoopTree(cfg)
        by_name = {c.name: c for c in cfg.continuations()}
        assert tree.depth(loop) == 0
        assert tree.depth(by_name["head"]) == 1
        assert tree.depth(by_name["body"]) == 1
        assert tree.depth(by_name["exit"]) == 0

    def test_nested_loops(self, world):
        # for i { for j { } } built by the frontend
        from repro import compile_source

        w = compile_source("""
fn main(n: i64) -> i64 {
    let mut acc = 0;
    for i in 0..n {
        for j in 0..n { acc += i * j; }
    }
    acc
}
""", optimize=False)
        main = w.find_external("main")
        cfg = CFG(Scope(main))
        tree = LoopTree(cfg)
        depths = {}
        for c in cfg.continuations():
            depths.setdefault(tree.depth(c), []).append(c.name)
        assert max(depths) == 2  # inner loop nests inside outer
        inner = " ".join(depths[2])
        assert "for_head" in inner or "for_body" in inner

    def test_no_loops_in_fib(self, world):
        # fib's recursion is via calls, but the conservative call-return
        # edges create a back edge to the entry; the entry loop is fine.
        fib = make_fib(world)
        tree = LoopTree(CFG(Scope(fib)))
        assert tree.depth(fib) <= 1


class TestSchedule:
    def test_schedule_is_legal(self, world):
        for make in (make_fib, make_loop_sum):
            w = World()
            f = make(w)
            for placement in Placement:
                Schedule(Scope(f), placement).verify()

    def test_all_live_ops_placed(self, world):
        loop = make_loop_sum(world)
        sched = Schedule(Scope(loop))
        placed = [op for b in sched.blocks() for op in sched.ops_in(b)]
        assert any(op.op_name() == "cmp.lt" for op in placed)
        assert sum(1 for op in placed if op.op_name() == "add") == 2

    def test_smart_hoists_loop_invariant(self):
        from repro import compile_source
        from repro.core.schedule import Schedule, Placement
        from repro.core.scope import Scope

        w = compile_source("""
fn main(n: i64, k: i64) -> i64 {
    let mut acc = 0;
    for i in 0..n {
        acc += i * (k * 31 + 7);
    }
    acc
}
""", optimize=False)
        main = w.find_external("main")
        scope = Scope(main)
        smart = Schedule(scope, Placement.SMART)
        late = Schedule(scope, Placement.LATE)
        tree = smart.looptree

        def depth_of_invariant(sched):
            for block in sched.blocks():
                for op in sched.ops_in(block):
                    if op.op_name() == "mul" and any(
                        getattr(o, "value", None) == 31 for o in op.ops
                    ):
                        return sched.looptree.depth(block)
            raise AssertionError("k*31 not found")

        assert depth_of_invariant(smart) < depth_of_invariant(late)

    def test_division_never_hoisted_above_late(self):
        from repro import compile_source
        from repro.core.schedule import Schedule, Placement
        from repro.core.scope import Scope

        w = compile_source("""
fn main(a: i64, b: i64) -> i64 {
    if b != 0 { a / b } else { 0 }
}
""", optimize=False)
        main = w.find_external("main")
        sched = Schedule(Scope(main), Placement.EARLY)
        for block in sched.blocks():
            for op in sched.ops_in(block):
                if op.op_name() == "div":
                    # must not sit in the entry (before the b != 0 guard)
                    assert block is not main

"""Sanity tests for the benchmark program suite definitions."""

import pytest

from repro.eval import source_loc
from repro.programs import ALL_PROGRAMS, Program, by_name, by_tag


class TestRegistry:
    def test_names_unique(self):
        names = [p.name for p in ALL_PROGRAMS]
        assert len(names) == len(set(names))

    def test_by_name(self):
        assert by_name("fannkuch").name == "fannkuch"
        with pytest.raises(KeyError):
            by_name("no_such_program")

    def test_by_tag_partitions(self):
        imperative = set(p.name for p in by_tag("imperative"))
        higher_order = set(p.name for p in by_tag("higher-order"))
        assert imperative and higher_order
        assert not imperative & higher_order

    def test_every_program_parses_and_checks(self):
        from repro.frontend import compile_to_ast

        for program in ALL_PROGRAMS:
            module = compile_to_ast(program.source)
            entries = {f.name for f in module.functions}
            assert program.entry in entries, program.name

    def test_bench_args_strictly_larger(self):
        # bench-sized inputs should demand at least as much work as the
        # correctness-test inputs (first argument is the size knob).
        for program in ALL_PROGRAMS:
            if program.test_args and program.bench_args:
                assert program.bench_args[0] >= program.test_args[0], \
                    program.name

    def test_loc_counts_positive(self):
        for program in ALL_PROGRAMS:
            assert source_loc(program.source) > 0

    def test_pe_programs_carry_markers(self):
        for program in by_tag("pe"):
            assert "@" in program.source or "$" in program.source

"""Trap-semantics regressions: every backend agrees on where traps fire.

Three seed bugs shared one root theme — the compilers disagreed about
*when* a possibly-trapping integer division executes:

1. construction-time folding discarded operand subtrees the reference
   interpreter would have evaluated (``(1/x) * 0`` folded to ``0``),
   losing traps under specialization;
2. the SSA baseline lowered ``let d = a / b;`` eagerly into the current
   block, trapping on paths that never use ``d`` (over-trapping);
3. codegen raised :class:`CodegenError` at *compile* time for trapping
   constant expressions that escaped folding (e.g. ``(1/0, 2)`` in a
   dead branch), instead of emitting a runtime trap at the use site.

The repro programs live in ``tests/corpus/`` in the fuzz shrinker's
format; ``test_corpus_replay`` runs each through the full differential
oracle so any committed corpus file automatically becomes a regression
test.  The direct tests below pin the specific fixed behaviors.
"""

from __future__ import annotations

import ast as pyast
from pathlib import Path

import pytest

from repro import compile_source, run_function
from repro.backend import bytecode as bc
from repro.backend.interp import Interpreter, InterpError
from repro.baselines.ssa import compile_source_ssa, run_ssa
from repro.core import fold
from repro.fuzz.oracle import OracleConfig, run_oracle

CORPUS = Path(__file__).parent / "corpus"

TRAP = "trap"


def _observe(thunk):
    try:
        return thunk()
    except (InterpError, bc.VMError, fold.EvalError) as exc:
        assert "division" in str(exc) or "undef" in str(exc), exc
        return TRAP


class _CorpusProgram:
    """Adapter: a corpus .impala file as a :func:`run_oracle` input."""

    def __init__(self, path: Path):
        lines = path.read_text().splitlines()
        meta = lines[1].removeprefix("// ")
        parts = dict(field.split(" ", 1)
                     for field in meta.split("; "))
        self.seed = None
        self.first_order = True   # exercise the SSA baseline path
        self.expr_only = False    # nested-CPS path needs to_sexpr
        self.entry = parts["entry"]
        self.arg_sets = [tuple(args) for args
                         in pyast.literal_eval(parts["args"])]
        self.source = "\n".join(line for line in lines
                                if not line.startswith("//"))

    def render(self) -> str:
        return self.source


@pytest.mark.parametrize("path", sorted(CORPUS.glob("*.impala")),
                         ids=lambda p: p.stem)
def test_corpus_replay(path):
    failure = run_oracle(_CorpusProgram(path), OracleConfig())
    assert failure is None, failure.describe()


# ---------------------------------------------------------------------------
# bug 1: folding must not discard possibly-trapping subtrees
# ---------------------------------------------------------------------------


def test_fold_keeps_trap_under_specialization():
    # Specializing f(0, 0) rebuilds (1/x)*y as (1/0)*0; the mul-by-zero
    # fold used to discard the division outright.
    src = ("fn f(x: i64, y: i64) -> i64 { (1 / x) * y }\n"
           "fn main(a: i64) -> i64 { f(0, 0) + a }")
    for optimize in (False, True):
        world = compile_source(src, optimize=optimize)
        assert _observe(lambda: Interpreter(world).call("main", 7)) == TRAP


def test_fold_still_fires_when_safe():
    # The guard must not cost folding power on trap-free operands.
    src = "fn main(x: i64) -> i64 { (x + 1) * 0 }"
    world = compile_source(src, optimize=True)
    assert Interpreter(world).call("main", 5) == 0
    assert run_function(world, "main", 5) == 0


def test_fold_select_keeps_trapping_arm():
    src = ("fn pick(c: bool, a: i64, b: i64) -> i64 { if c { a / b } else { a } }\n"
           "fn main(a: i64) -> i64 { pick(true, a, 0) }")
    world = compile_source(src, optimize=True)
    assert _observe(lambda: Interpreter(world).call("main", 3)) == TRAP


# ---------------------------------------------------------------------------
# bug 2: SSA must trap exactly where the graph interpreter does
# ---------------------------------------------------------------------------

SSA_CASES = [
    # (source, arg sets)
    ("fn main(a: i64, b: i64) -> i64 { let d = a / b; "
     "if a > 0 { d } else { 0 - a } }",
     [(0, 0), (3, 0), (3, 2), (-1, 5)]),
    # unused trapping let: neither side should trap
    ("fn main(a: i64, b: i64) -> i64 { let d = a / b; a + 1 }",
     [(1, 0), (4, 2)]),
    # trapping value feeding a phi: traps only when that edge runs
    ("fn main(a: i64, b: i64) -> i64 { let q = a / b; "
     "let r = if a > 10 { q + 1 } else { 7 }; r }",
     [(0, 0), (20, 0), (20, 4)]),
]


@pytest.mark.parametrize("src,arg_sets", SSA_CASES)
@pytest.mark.parametrize("optimize", [False, True])
def test_ssa_trap_alignment(src, arg_sets, optimize):
    ref = compile_source(src, optimize=False)
    module = compile_source_ssa(src, optimize=optimize)
    for args in arg_sets:
        want = _observe(lambda: Interpreter(ref).call("main", *args))
        got = _observe(lambda: run_ssa(module, "main", *args))
        assert got == want, (src, args, got, want)


# ---------------------------------------------------------------------------
# bug 3: trapping const expressions compile to runtime traps
# ---------------------------------------------------------------------------


def test_codegen_trapping_const_aggregate():
    src = ("fn main(a: i64) -> i64 { "
           "let t = if a > 100 { (1 / 0, 2) } else { (a, 3) }; t.0 + t.1 }")
    world = compile_source(src, optimize=True)
    # The dead-at-runtime branch must not trap...
    assert run_function(world, "main", 5) == 8
    assert Interpreter(world).call("main", 5) == 8
    # ...and the taken branch must trap at run time, not compile time.
    assert _observe(lambda: run_function(world, "main", 200)) == TRAP
    assert _observe(lambda: Interpreter(world).call("main", 200)) == TRAP

"""Unit tests for the interned type system."""

from repro.core import types as ct


class TestInterning:
    def test_prim_types_are_singletons(self):
        assert ct.prim_type("i32") is ct.I32
        assert ct.prim_type(ct.PrimTypeKind.F64) is ct.F64

    def test_fn_type_interned(self):
        a = ct.fn_type((ct.MEM, ct.I64))
        b = ct.fn_type([ct.MEM, ct.I64])
        assert a is b

    def test_tuple_type_interned(self):
        assert ct.tuple_type((ct.I32, ct.BOOL)) is ct.tuple_type((ct.I32, ct.BOOL))
        assert ct.tuple_type((ct.I32,)) is not ct.tuple_type((ct.I64,))

    def test_nested_structural_identity(self):
        a = ct.ptr_type(ct.definite_array_type(ct.F32, 4))
        b = ct.ptr_type(ct.definite_array_type(ct.F32, 4))
        assert a is b
        assert a is not ct.ptr_type(ct.definite_array_type(ct.F32, 5))

    def test_struct_types_nominal(self):
        a = ct.struct_type("Point", ("x", "y"), (ct.F64, ct.F64))
        b = ct.struct_type("Point", ("x", "y"), (ct.F64, ct.F64))
        c = ct.struct_type("Vec2", ("x", "y"), (ct.F64, ct.F64))
        assert a is b
        assert a is not c

    def test_unit_is_empty_tuple(self):
        assert ct.UNIT is ct.tuple_type(())


class TestPrimProperties:
    def test_int_classification(self):
        assert ct.I8.is_int and ct.I8.is_signed and not ct.I8.is_unsigned
        assert ct.U64.is_int and ct.U64.is_unsigned
        assert not ct.F32.is_int and ct.F32.is_float
        assert ct.BOOL.is_bool and not ct.BOOL.is_int

    def test_bitwidths(self):
        assert ct.I8.bitwidth == 8
        assert ct.U16.bitwidth == 16
        assert ct.I32.bitwidth == 32
        assert ct.F64.bitwidth == 64
        assert ct.BOOL.bitwidth == 1


class TestOrder:
    def test_scalars_are_order_zero(self):
        assert ct.I64.order() == 0
        assert ct.tuple_type((ct.I32, ct.F64)).order() == 0
        assert ct.ptr_type(ct.I8).order() == 0

    def test_basic_block_type_is_order_one(self):
        bb = ct.fn_type((ct.MEM, ct.I64))
        assert bb.order() == 1
        assert bb.is_basic_block()

    def test_function_type_is_order_two(self):
        fn = ct.fn_type((ct.MEM, ct.I64, ct.fn_type((ct.MEM, ct.I64))))
        assert fn.order() == 2
        assert fn.is_returning()
        assert not fn.is_basic_block()

    def test_higher_order_function(self):
        inner = ct.fn_type((ct.MEM, ct.I64, ct.fn_type((ct.MEM, ct.I64))))
        hof = ct.fn_type((ct.MEM, inner, ct.fn_type((ct.MEM, ct.I64))))
        assert hof.order() == 3

    def test_tuple_of_functions_takes_max(self):
        bb = ct.fn_type((ct.MEM,))
        assert ct.tuple_type((ct.I64, bb)).order() == 1

    def test_ret_type_finds_last_fn_param(self):
        ret = ct.fn_type((ct.MEM, ct.I64))
        fn = ct.fn_type((ct.MEM, ct.I64, ret))
        assert fn.ret_type() is ret
        assert ct.fn_type((ct.MEM, ct.I64)).ret_type() is None


class TestPrinting:
    def test_prim_str(self):
        assert str(ct.I32) == "i32"
        assert str(ct.BOOL) == "bool"

    def test_compound_str(self):
        assert str(ct.fn_type((ct.MEM, ct.I64))) == "fn(mem, i64)"
        assert str(ct.ptr_type(ct.I8)) == "ptr[i8]"
        assert str(ct.definite_array_type(ct.F32, 3)) == "[f32 * 3]"
        assert str(ct.indefinite_array_type(ct.I64)) == "[i64]"
        assert str(ct.tuple_type((ct.I32, ct.BOOL))) == "(i32, bool)"

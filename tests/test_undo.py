"""UndoLog checkpoints: first-touch rollback must be byte-identical.

The pipeline's per-phase checkpoints are :class:`repro.core.undo.UndoLog`
instances on the default (cached, incremental) configuration.  These
tests drive the full mutation surface — body rewires, new defs,
registry surgery, param surgery, external flags, GVN-hit renames —
and require ``restore()`` to reproduce the armed world exactly, as
printed and as executed.
"""

import pytest

import repro.core.types as ct
from repro.core.printer import print_world
from repro.core.undo import UndoLog
from repro.core.verify import verify
from repro.core.world import World
from repro.frontend import compile_source
from repro.backend.interp import Interpreter
from repro.transform.pipeline import OptimizeOptions, optimize

from .helpers import FN_I64, RET_I64, make_fib, make_loop_sum


def _fingerprint(world):
    return (print_world(world), world._gid, world._slot_id,
            world._alloc_id, world._global_id,
            [c.gid for c in world._continuations],
            sorted(world._externals),
            world.stats.gvn_hits, world.stats.gvn_misses,
            world.stats.folds)


class TestRoundtrip:
    def test_body_rewire_roundtrip(self):
        world = World()
        fib = make_fib(world)
        undo = UndoLog(world)
        before = _fingerprint(world)

        ret = fib.params[2]
        fib.jump(ret, [fib.params[0], world.literal(ct.I64, 7)])
        assert _fingerprint(world) != before

        undo.restore()
        assert _fingerprint(world) == before
        verify(world, full=True)

    def test_new_defs_become_garbage(self):
        world = World()
        f = make_loop_sum(world)
        undo = UndoLog(world)
        before = _fingerprint(world)

        g = world.continuation(FN_I64, "extra")
        g.jump(f, [g.params[0], world.literal(ct.I64, 3), g.params[2]])
        world.make_external(g)

        undo.restore()
        assert _fingerprint(world) == before
        assert g not in world._continuations
        verify(world, full=True)

    def test_param_surgery_roundtrip(self):
        world = World()
        f = world.continuation(FN_I64, "f")
        undo = UndoLog(world)
        before_type = f.type
        before_params = tuple(f.params)

        p = f.append_param(ct.I64, "late")
        assert f.num_params == 4 and p.index == 3
        f.remove_param(1)
        assert f.params[1].index == 1

        undo.restore()
        assert f.type is before_type
        assert tuple(f.params) == before_params
        assert [p.index for p in f.params] == [0, 1, 2]

    def test_external_flag_roundtrip(self):
        world = World()
        f = make_fib(world)
        world.make_external(f)
        undo = UndoLog(world)
        before = _fingerprint(world)

        world.remove_external(f)
        assert not f.is_external

        undo.restore()
        assert f.is_external
        assert _fingerprint(world) == before

    def test_global_rename_on_gvn_hit_roundtrip(self):
        world = World()
        make_fib(world)
        init = world.literal(ct.I64, 42)
        g1 = world.global_(init, is_mutable=False, name="first")
        undo = UndoLog(world)

        # Immutable globals share global_id 0: same init unifies to the
        # same op, and the new name lands on the pre-existing def.
        g2 = world.global_(init, is_mutable=False, name="second")
        assert g2 is g1 and g1.name == "second"

        undo.restore()
        assert g1.name == "first"

    def test_restore_rearms_at_checkpoint(self):
        world = World()
        fib = make_fib(world)
        undo = UndoLog(world)
        before = _fingerprint(world)

        ret = fib.params[2]
        fib.jump(ret, [fib.params[0], world.literal(ct.I64, 1)])
        undo.restore()
        assert undo.armed

        # A second round of damage against the re-armed log.
        fib.jump(ret, [fib.params[0], world.literal(ct.I64, 2)])
        undo.restore()
        assert _fingerprint(world) == before

    def test_generation_stays_monotone(self):
        world = World()
        fib = make_fib(world)
        undo = UndoLog(world)
        generation = world.generation
        fib.jump(fib.params[2], [fib.params[0], world.literal(ct.I64, 1)])
        undo.restore()
        assert world.generation > generation

    def test_wholesale_restore_disarms(self):
        from repro.core.snapshot import restore_world, snapshot_world

        world = World()
        make_fib(world)
        snap = snapshot_world(world)
        undo = UndoLog(world)
        restore_world(snap, into=world)
        assert not undo.armed
        assert world._undo is None


SOURCE = """
fn main(n: i64) -> i64 {
    let mut acc = 0;
    let mut i = 0;
    while i < n {
        acc += i * i;
        i += 1;
    }
    acc
}
"""


class TestPipelineRollback:
    def _run(self, world):
        return Interpreter(world).call("main", 9)

    def test_faulted_pass_rolls_back_through_undo_log(self):
        from repro.fuzz.inject import FaultInjector, FaultPlan

        expected_world = compile_source(SOURCE)
        expected = self._run(expected_world)

        world = compile_source(SOURCE, optimize=False)
        injector = FaultInjector(FaultPlan("raise", target="inline"))
        stats = optimize(world, options=OptimizeOptions(
            pass_hook=injector, crash_dir=None))
        assert stats.rollbacks >= 1
        assert any("inline" in key for key in stats.quarantined)
        verify(world, full=True)
        assert self._run(world) == expected

    def test_rollback_matches_snapshot_rollback(self):
        """The undo-log rollback and the deep-snapshot rollback must
        leave behaviourally identical worlds (same recovered output,
        same verified IR) for the same injected fault."""
        from repro.fuzz.inject import FaultInjector, FaultPlan

        def recovered(incremental):
            world = compile_source(SOURCE, optimize=False)
            injector = FaultInjector(FaultPlan("raise", target="partial_eval"))
            optimize(world, options=OptimizeOptions(
                pass_hook=injector, crash_dir=None,
                incremental=incremental))
            verify(world, full=True)
            return self._run(world), print_world(world)

        undo_result, undo_ir = recovered(True)
        snap_result, snap_ir = recovered(False)
        assert undo_result == snap_result
        assert undo_ir == snap_ir

    def test_pipeline_disarms_on_exit(self):
        world = compile_source(SOURCE)
        assert world._undo is None

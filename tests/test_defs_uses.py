"""Tests for the def/use machinery and continuation surgery (defs.py)."""

import pytest

from repro.core import types as ct
from repro.core.defs import Continuation, Use
from repro.core.world import World

from .helpers import FN_I64


@pytest.fixture()
def world():
    return World("test")


class TestUseLists:
    def test_uses_recorded_per_operand(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        node = world.add(x, x)
        uses = list(x.uses)
        assert Use(node, 0) in uses and Use(node, 1) in uses

    def test_jump_registers_uses(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        world.jump(f, ret, (mem, x))
        assert Use(f, 0) in list(ret.uses)
        assert Use(f, 1) in list(mem.uses)
        assert Use(f, 2) in list(x.uses)

    def test_rejump_unregisters_old_uses(self, world):
        f = world.continuation(FN_I64, "f")
        g = world.continuation(FN_I64, "g")
        mem, x, ret = f.params
        world.jump(f, ret, (mem, x))
        world.jump(f, g, (mem, x, ret))
        # ret is now an argument (index 3), not the callee
        indices = {index for user, index in ret.uses if user is f}
        assert indices == {3}

    def test_unset_body_detaches(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        world.jump(f, ret, (mem, x))
        f.unset_body()
        assert not f.has_body()
        assert all(user is not f for user, _ in x.uses)

    def test_num_uses_shared_node(self, world):
        f = world.continuation(FN_I64, "f")
        x = f.params[1]
        a = world.add(x, world.one(ct.I64))
        b = world.mul(a, a)
        assert a.num_uses == 2  # both operand slots of b
        assert not a.is_unused()


class TestContinuationSurgery:
    def test_append_param_updates_type(self, world):
        bb = world.basic_block((), "bb")
        p = bb.append_param(ct.I64, "x")
        assert bb.fn_type.param_types == (ct.I64,)
        assert p.index == 0
        q = bb.append_param(ct.BOOL, "y")
        assert bb.fn_type.param_types == (ct.I64, ct.BOOL)
        assert q.index == 1

    def test_remove_param_shifts_indices(self, world):
        bb = world.basic_block((), "bb")
        p0 = bb.append_param(ct.I64)
        p1 = bb.append_param(ct.BOOL)
        p2 = bb.append_param(ct.F64)
        bb.remove_param(1)
        assert bb.params == [p0, p2]
        assert p2.index == 1
        assert bb.fn_type.param_types == (ct.I64, ct.F64)

    def test_arity_checked_on_jump(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        with pytest.raises(AssertionError):
            f.jump(ret, (mem,))  # ret wants (mem, i64)

    def test_callee_must_be_fn_typed(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        with pytest.raises(AssertionError):
            f.jump(x, ())

    def test_update_arg_and_callee(self, world):
        f = world.continuation(FN_I64, "f")
        g = world.continuation(FN_I64, "g")
        mem, x, ret = f.params
        world.jump(f, g, (mem, x, ret))
        f.update_arg(1, world.literal(ct.I64, 9))
        assert f.arg(1).value == 9
        h = world.continuation(FN_I64, "h")
        f.update_callee(h)
        assert f.callee is h

    def test_classification(self, world):
        f = world.continuation(FN_I64, "f")
        bb = world.basic_block((ct.MEM, ct.I64), "bb")
        assert f.is_returning() and not f.is_basic_block_like()
        assert bb.is_basic_block_like() and not bb.is_returning()
        assert world.branch().is_intrinsic()
        assert f.order() == 2 and bb.order() == 1


class TestWorldRegistry:
    def test_externals_listing(self, world):
        f = world.continuation(FN_I64, "f")
        world.make_external(f)
        assert world.externals() == [f]
        assert world.find_external("f") is f
        world.remove_external(f)
        assert world.externals() == []
        assert not f.is_external

    def test_intrinsics_are_singletons(self, world):
        assert world.branch() is world.branch()
        assert world.print_i64() is world.print_i64()
        assert world.match(ct.I64) is world.match(ct.I64)
        assert world.match(ct.I64) is not world.match(ct.I32)

    def test_gids_strictly_increase(self, world):
        a = world.literal(ct.I64, 1)
        b = world.literal(ct.I64, 2)
        c = world.add(a, b)
        assert a.gid < b.gid < c.gid

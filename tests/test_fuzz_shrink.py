"""The minimizing shrinker, driven by a known-bad injected pass.

``drop_one_argument`` (a mangler misuse that specializes an ``i64``
parameter to literal 0 and drops the corresponding argument) produces
verifier-clean but semantically wrong IR.  The shrinker must reduce a
generated program that the injection breaks down to a tiny repro —
the ISSUE requires at most ten lines — while the failure keeps
reproducing, and persist it under a corpus directory.
"""

from __future__ import annotations

from repro import compile_source
from repro.backend.interp import Interpreter, InterpError
from repro.core import fold
from repro.fuzz import generate_program, shrink, write_repro
from repro.fuzz.gen import FuzzFn, FuzzProgram, Var
from repro.fuzz.inject import drop_one_argument
from repro.fuzz.oracle import TRAP, FuzzFailure

SEED = 24  # known to have an internal call site the injection can hit
MAX_STEPS = 200_000  # the injection can manufacture infinite loops


def _results(world, prog):
    out = []
    for args in prog.arg_sets:
        interp = Interpreter(world, max_steps=MAX_STEPS)
        try:
            out.append(interp.call(prog.entry, *args))
        except (InterpError, fold.EvalError):
            out.append(TRAP)
    return out


def _broken_by_injection(prog) -> bool:
    """True iff ``drop_one_argument`` changes the program's results."""
    source = prog.render()
    reference = _results(compile_source(source, optimize=False), prog)
    world = compile_source(source, optimize=False)
    if drop_one_argument(world) is None:
        return False
    return _results(world, prog) != reference


class TestShrinkKnownBadPass:
    def test_shrinks_to_small_repro(self):
        prog = generate_program(SEED)
        assert _broken_by_injection(prog), (
            "seed no longer exercises the injected pass; pick another")
        original_lines = len(prog.render().splitlines())

        shrunk = shrink(prog, _broken_by_injection)

        shrunk_lines = len(shrunk.render().splitlines())
        assert shrunk_lines <= 10, shrunk.render()
        assert shrunk_lines <= original_lines
        # the minimized program still exhibits the failure
        assert _broken_by_injection(shrunk)
        # and is still a complete, runnable program
        world = compile_source(shrunk.render(), optimize=False)
        Interpreter(world).call(shrunk.entry, *shrunk.arg_sets[0])

    def test_shrink_keeps_program_when_nothing_smaller_fails(self):
        # A predicate only the exact original satisfies: shrink must
        # return the input unchanged (every variant is rejected).
        prog = generate_program(0)
        rendered = prog.render()
        out = shrink(prog, lambda cand: cand.render() == rendered,
                     max_attempts=200)
        assert out.render() == rendered

    def test_predicate_exception_counts_as_not_failing(self):
        prog = generate_program(0)
        calls = []

        def predicate(cand):
            calls.append(cand)
            raise RuntimeError("predicate blew up")

        out = shrink(prog, predicate, max_attempts=50)
        assert out.render() == prog.render()
        assert calls  # variants were actually tried


class TestInjectedPass:
    def test_no_call_site_returns_none(self):
        entry = FuzzFn("fz", (("a", "i64"), ("b", "i64")), "i64", (),
                       Var("i64", "a"), extern=True)
        prog = FuzzProgram((entry,), "fz", ((1, 2),), seed="tiny")
        world = compile_source(prog.render(), optimize=False)
        assert drop_one_argument(world) is None

    def test_injection_is_verifier_clean(self):
        from repro.core.verify import verify

        prog = generate_program(SEED)
        world = compile_source(prog.render(), optimize=False)
        assert drop_one_argument(world) is not None
        verify(world, full=True)  # must not raise: the bug is semantic


class TestWriteRepro:
    def test_writes_repro_with_provenance(self, tmp_path):
        prog = generate_program(SEED)
        shrunk = shrink(prog, _broken_by_injection)
        failure = FuzzFailure(SEED, "interp(static)", "result divergence",
                              args=shrunk.arg_sets[0], expected=1, got=2,
                              source=shrunk.render())
        path = write_repro(shrunk, failure, directory=tmp_path)
        assert path.exists()
        text = path.read_text()
        assert text.startswith("// fuzz repro: stage interp(static)")
        assert f"seed {SEED}" in text
        # the body after the header is the minimized source verbatim
        body = "\n".join(line for line in text.splitlines()
                         if not line.startswith("//"))
        assert body.strip() == shrunk.render().strip()

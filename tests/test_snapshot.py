"""World snapshots: byte-identical round trips, in-place restore."""

from __future__ import annotations

import pytest

from repro.core.snapshot import (Snapshot, SnapshotError, restore_world,
                                 snapshot_world)
from repro.core.verify import verify
from repro.core.world import World
from repro.frontend import compile_source
from repro.programs.suite import ALL_PROGRAMS
from repro.transform.pipeline import optimize


def _snapshot_roundtrip(world: World) -> None:
    first = snapshot_world(world)
    clone = restore_world(first)
    assert clone is not world
    verify(clone, full=True)
    # The clone serializes to the exact same bytes: gids, names,
    # hash-cons membership, registration order all survived.
    assert snapshot_world(clone).to_json() == first.to_json()


@pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
def test_roundtrip_unoptimized(program):
    _snapshot_roundtrip(compile_source(program.source, optimize=False))


@pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
def test_roundtrip_optimized(program):
    _snapshot_roundtrip(compile_source(program.source))


@pytest.mark.parametrize("program", ALL_PROGRAMS[:4], ids=lambda p: p.name)
def test_restored_world_still_runs(program):
    from repro.backend.interp import Interpreter

    world = compile_source(program.source, optimize=False)
    expected = Interpreter(world).call(program.entry, *program.test_args)
    clone = restore_world(snapshot_world(world))
    assert Interpreter(clone).call(program.entry,
                                   *program.test_args) == expected


@pytest.mark.parametrize("program", ALL_PROGRAMS[:4], ids=lambda p: p.name)
def test_in_place_restore_rolls_back_optimization(program):
    """snapshot → optimize → restore-in-place == the original world."""
    world = compile_source(program.source, optimize=False)
    checkpoint = snapshot_world(world)
    optimize(world)
    assert snapshot_world(world).to_json() != checkpoint.to_json()
    restore_world(checkpoint, into=world)
    verify(world, full=True)
    assert snapshot_world(world).to_json() == checkpoint.to_json()


@pytest.mark.parametrize("program", ALL_PROGRAMS[:4], ids=lambda p: p.name)
def test_restored_world_can_be_reoptimized(program):
    """A restored checkpoint is a fully live world, not a dead record."""
    from repro.backend.interp import Interpreter

    world = compile_source(program.source, optimize=False)
    clone = restore_world(snapshot_world(world))
    optimize(clone)
    verify(clone, full=True)
    assert Interpreter(clone).call(program.entry, *program.test_args) == \
        Interpreter(world).call(program.entry, *program.test_args)


def test_json_roundtrip():
    world = compile_source(ALL_PROGRAMS[0].source, optimize=False)
    snap = snapshot_world(world)
    text = snap.to_json()
    again = Snapshot.from_json(text)
    assert again.to_json() == text
    verify(restore_world(again), full=True)


def test_from_json_rejects_non_snapshots():
    with pytest.raises(SnapshotError):
        Snapshot.from_json("{}")
    with pytest.raises(SnapshotError):
        Snapshot.from_json('{"format": 999}')


def test_counters_survive():
    """Fresh defs made after a restore never collide with captured gids."""
    world = compile_source(ALL_PROGRAMS[0].source, optimize=False)
    clone = restore_world(snapshot_world(world))
    assert clone._gid == world._gid
    gids = {d.gid for d in clone._primops.values()}
    gids |= {c.gid for c in clone._continuations}
    from repro.core import types as ct

    lit = clone.literal(ct.I64, 123456)
    assert lit.gid not in gids or lit.gid < clone._gid

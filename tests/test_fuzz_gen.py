"""The fuzz program generator: determinism, well-typedness, totality.

The generator underpins the whole differential harness, so its own
contract gets tested directly: every seed must yield a program that
compiles, runs to completion on the reference interpreter, and is
byte-identical when regenerated from the same seed.
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.backend.interp import Interpreter
from repro.fuzz import FuzzProgram, GenConfig, generate_program
from repro.fuzz.gen import ForS, Lam, WhileS, _walk_stmts

SEEDS = range(25)


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in SEEDS:
            a = generate_program(seed).render()
            b = generate_program(seed).render()
            assert a == b

    def test_seeds_differ(self):
        sources = {generate_program(seed).render() for seed in SEEDS}
        assert len(sources) > len(SEEDS) // 2

    def test_config_is_part_of_the_key(self):
        full = generate_program(3).render()
        restricted = generate_program(3, GenConfig(expr_only=True)).render()
        assert full != restricted


class TestWellTyped:
    def test_every_seed_compiles_and_runs(self):
        for seed in SEEDS:
            prog = generate_program(seed)
            world = compile_source(prog.render(), optimize=False)
            interp = Interpreter(world)
            for args in prog.arg_sets:
                result = interp.call(prog.entry, *args)
                assert isinstance(result, int)

    def test_entry_is_external_and_binary(self):
        prog = generate_program(0)
        entry = prog.entry_fn
        assert entry.extern
        assert len(entry.params) == 2
        assert prog.arg_sets  # something to call it with


class TestFeatureKnobs:
    def test_higher_order_off_means_first_order(self):
        cfg = GenConfig(higher_order=False)
        for seed in range(10):
            prog = generate_program(seed, cfg)
            assert prog.first_order

    def test_loops_off_means_no_loops(self):
        cfg = GenConfig(loops=False)
        for seed in range(10):
            prog = generate_program(seed, cfg)
            for fn in prog.fns:
                for stmt in _walk_stmts(fn.stmts):
                    assert not isinstance(stmt, (ForS, WhileS))

    def test_first_order_property_detects_lambdas(self):
        # Some default-config seed must produce a lambda, and the
        # property must notice.
        from repro.fuzz.gen import _expr_children, _stmt_exprs

        def has_lambda(prog):
            def walk(e):
                if isinstance(e, Lam):
                    return True
                return any(walk(c) for c in _expr_children(e))

            for fn in prog.fns:
                for stmt in _walk_stmts(fn.stmts):
                    if any(walk(e) for e in _stmt_exprs(stmt)):
                        return True
                if walk(fn.result):
                    return True
            return False

        saw_lambda = False
        for seed in SEEDS:
            prog = generate_program(seed)
            if has_lambda(prog):
                saw_lambda = True
                assert not prog.first_order
        assert saw_lambda


class TestMemHeavyMode:
    @staticmethod
    def _has_memory_ops(prog: FuzzProgram) -> bool:
        from repro.fuzz.gen import Index, StoreS, _expr_children, _stmt_exprs

        def expr_has(e) -> bool:
            if isinstance(e, Index):
                return True
            return any(expr_has(c) for c in _expr_children(e))

        for fn in prog.fns:
            for stmt in _walk_stmts(fn.stmts):
                if isinstance(stmt, StoreS):
                    return True
                if any(expr_has(e) for e in _stmt_exprs(stmt)):
                    return True
            if expr_has(fn.result):
                return True
        return False

    def test_corpus_is_memory_dense(self):
        """A mem-heavy corpus must contain memory ops in >90% of
        programs — the whole point of the profile is to feed the alias
        analysis and mem_opt judgement calls, not arithmetic."""
        n = 100
        with_mem = sum(
            self._has_memory_ops(generate_program(seed,
                                                  GenConfig(mem_heavy=True)))
            for seed in range(n))
        assert with_mem > 0.9 * n

    def test_mem_heavy_is_part_of_the_key(self):
        default = generate_program(3).render()
        heavy = generate_program(3, GenConfig(mem_heavy=True)).render()
        assert default != heavy

    def test_mem_heavy_programs_compile_and_run(self):
        for seed in range(10):
            prog = generate_program(seed, GenConfig(mem_heavy=True))
            world = compile_source(prog.render(), optimize=False)
            interp = Interpreter(world)
            for args in prog.arg_sets:
                assert isinstance(interp.call(prog.entry, *args), int)


class TestExprOnlyMode:
    def test_renders_and_matches_sexpr(self):
        from repro.baselines.nested_cps.convert import cps_convert_expr
        from repro.baselines.nested_cps.interp import evaluate
        from repro.core import fold

        for seed in range(10):
            prog = generate_program(seed, GenConfig(expr_only=True))
            assert prog.expr_only
            world = compile_source(prog.render(), optimize=False)
            interp = Interpreter(world)
            for args in prog.arg_sets:
                expect = interp.call(prog.entry, *args)
                raw = evaluate(cps_convert_expr(prog.to_sexpr(args)))
                assert fold.to_signed(raw, 64) == expect

    def test_full_program_has_no_sexpr_form(self):
        prog = generate_program(0)
        with pytest.raises(AssertionError):
            prog.to_sexpr(prog.arg_sets[0])


class TestCostModel:
    def test_budget_bounds_execution(self):
        # A tight budget must still yield runnable (smaller) programs.
        cfg = GenConfig(cost_budget=500)
        from repro.fuzz.gen import program_cost

        for seed in range(10):
            prog = generate_program(seed, cfg)
            assert program_cost(prog) <= 500
            world = compile_source(prog.render(), optimize=False)
            Interpreter(world).call(prog.entry, *prog.arg_sets[0])

"""Hypothesis properties for the scalar semantics in ``core/fold.py``.

``fold`` is the single source of truth shared by the constant folder,
the graph interpreter, the bytecode VM and the C emitter — the
differential fuzzer compares those *against each other*, so this file
pins the reference itself against an **independent model**: plain
Python integer arithmetic on mathematical values, masked to two's
complement.  Covered, per the ISSUE: the full int/bool operator table,
division/modulo edge cases (trap on zero, INT_MIN/-1, truncation
toward zero, sign of remainder) and overflow wrapping.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import fold
from repro.core import types as ct
from repro.core.primops import ArithKind, CmpRel

INT_TYPES = [ct.I8, ct.I16, ct.I32, ct.I64, ct.U8, ct.U16, ct.U32, ct.U64]
SIGNED_TYPES = [t for t in INT_TYPES if t.is_signed]
UNSIGNED_TYPES = [t for t in INT_TYPES if not t.is_signed]
INT_OPS = [ArithKind.ADD, ArithKind.SUB, ArithKind.MUL, ArithKind.AND,
           ArithKind.OR, ArithKind.XOR, ArithKind.SHL, ArithKind.SHR,
           ArithKind.DIV, ArithKind.REM]
BOOL_OPS = [ArithKind.AND, ArithKind.OR, ArithKind.XOR]
RELS = [CmpRel.EQ, CmpRel.NE, CmpRel.LT, CmpRel.LE, CmpRel.GT, CmpRel.GE]

raw = st.integers(0, 2**64 - 1)


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def _sig(value: int, width: int) -> int:
    return value - (1 << width) if value >= 1 << (width - 1) else value


def _trunc_div(a: int, b: int) -> int:
    """C-style truncating division on mathematical integers."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _model(kind: ArithKind, a: int, b: int, width: int, signed: bool) -> int:
    """Independent two's-complement model on canonical unsigned values."""
    if kind is ArithKind.ADD:
        return _mask(a + b, width)
    if kind is ArithKind.SUB:
        return _mask(a - b, width)
    if kind is ArithKind.MUL:
        return _mask(a * b, width)
    if kind is ArithKind.AND:
        return a & b
    if kind is ArithKind.OR:
        return a | b
    if kind is ArithKind.XOR:
        return a ^ b
    if kind is ArithKind.SHL:
        return _mask(a << (b % width), width)
    if kind is ArithKind.SHR:
        amount = b % width
        return _mask((_sig(a, width) if signed else a) >> amount, width)
    if b == 0:
        raise ZeroDivisionError
    if signed:
        sa, sb = _sig(a, width), _sig(b, width)
        q = _trunc_div(sa, sb)
        if kind is ArithKind.DIV:
            return _mask(q, width)
        return _mask(sa - q * sb, width)
    return a // b if kind is ArithKind.DIV else a % b


class TestFullIntTable:
    @pytest.mark.parametrize("prim", INT_TYPES, ids=str)
    @given(a=raw, b=raw)
    def test_every_op_matches_the_model(self, prim, a, b):
        width = prim.bitwidth
        a, b = _mask(a, width), _mask(b, width)
        for kind in INT_OPS:
            try:
                want = _model(kind, a, b, width, prim.is_signed)
            except ZeroDivisionError:
                with pytest.raises(fold.EvalError):
                    fold.arith(kind, prim, a, b)
                continue
            got = fold.arith(kind, prim, a, b)
            assert got == want, (kind, prim, a, b)
            # every result stays in the canonical unsigned range
            assert 0 <= got < (1 << width), (kind, prim, a, b)

    @pytest.mark.parametrize("prim", INT_TYPES, ids=str)
    @given(a=raw, b=raw)
    def test_shift_amount_is_masked_to_width(self, prim, a, b):
        width = prim.bitwidth
        a = _mask(a, width)
        for kind in (ArithKind.SHL, ArithKind.SHR):
            assert fold.arith(kind, prim, a, _mask(b, width)) \
                == fold.arith(kind, prim, a, _mask(b, width) % width)


class TestDivisionEdgeCases:
    @pytest.mark.parametrize("prim", INT_TYPES, ids=str)
    @given(a=raw)
    def test_division_by_zero_traps(self, prim, a):
        a = _mask(a, prim.bitwidth)
        for kind in (ArithKind.DIV, ArithKind.REM):
            with pytest.raises(fold.EvalError):
                fold.arith(kind, prim, a, 0)

    @pytest.mark.parametrize("prim", SIGNED_TYPES, ids=str)
    def test_int_min_over_minus_one_wraps_to_int_min(self, prim):
        width = prim.bitwidth
        int_min = 1 << (width - 1)  # canonical form of -2**(w-1)
        minus_one = _mask(-1, width)
        assert fold.arith(ArithKind.DIV, prim, int_min, minus_one) == int_min
        assert fold.arith(ArithKind.REM, prim, int_min, minus_one) == 0

    @pytest.mark.parametrize("prim", SIGNED_TYPES, ids=str)
    @given(a=raw, b=raw)
    def test_signed_divmod_laws(self, prim, a, b):
        width = prim.bitwidth
        a, b = _mask(a, width), _mask(b, width)
        sa, sb = _sig(a, width), _sig(b, width)
        if sb == 0:
            return
        q = _sig(fold.arith(ArithKind.DIV, prim, a, b), width)
        r = _sig(fold.arith(ArithKind.REM, prim, a, b), width)
        # Euclid holds modulo 2**w (exactly, except the INT_MIN/-1 wrap)
        assert _mask(q * sb + r, width) == a
        # remainder takes the sign of the dividend and is bounded
        assert r == 0 or (r < 0) == (sa < 0)
        assert abs(r) < abs(sb)
        # quotient truncates toward zero (undefined only for the wrap)
        if not (sa == -(1 << (width - 1)) and sb == -1):
            assert q == _trunc_div(sa, sb)

    @pytest.mark.parametrize("prim", UNSIGNED_TYPES, ids=str)
    @given(a=raw, b=raw)
    def test_unsigned_divmod_laws(self, prim, a, b):
        width = prim.bitwidth
        a, b = _mask(a, width), _mask(b, width)
        if b == 0:
            return
        q = fold.arith(ArithKind.DIV, prim, a, b)
        r = fold.arith(ArithKind.REM, prim, a, b)
        assert q * b + r == a
        assert 0 <= r < b


class TestOverflowWrapping:
    @pytest.mark.parametrize("prim", SIGNED_TYPES, ids=str)
    def test_boundary_wraps(self, prim):
        width = prim.bitwidth
        int_max = (1 << (width - 1)) - 1
        int_min_c = 1 << (width - 1)
        one = 1
        # MAX + 1 == MIN; MIN - 1 == MAX; MIN * -1 == MIN
        assert fold.arith(ArithKind.ADD, prim, int_max, one) == int_min_c
        assert fold.arith(ArithKind.SUB, prim, int_min_c, one) == int_max
        assert fold.arith(ArithKind.MUL, prim, int_min_c,
                          _mask(-1, width)) == int_min_c

    @pytest.mark.parametrize("prim", INT_TYPES, ids=str)
    @given(a=raw, b=raw)
    def test_add_sub_roundtrip(self, prim, a, b):
        width = prim.bitwidth
        a, b = _mask(a, width), _mask(b, width)
        s = fold.arith(ArithKind.ADD, prim, a, b)
        assert fold.arith(ArithKind.SUB, prim, s, b) == a


class TestBoolTable:
    def test_exhaustive_against_python(self):
        for a in (False, True):
            for b in (False, True):
                assert fold.arith(ArithKind.AND, ct.BOOL, a, b) == (a and b)
                assert fold.arith(ArithKind.OR, ct.BOOL, a, b) == (a or b)
                assert fold.arith(ArithKind.XOR, ct.BOOL, a, b) == (a != b)
                for rel, py in ((CmpRel.EQ, a == b), (CmpRel.NE, a != b),
                                (CmpRel.LT, a < b), (CmpRel.LE, a <= b),
                                (CmpRel.GT, a > b), (CmpRel.GE, a >= b)):
                    assert fold.compare(rel, ct.BOOL, a, b) == py

    def test_results_are_bools(self):
        for kind in BOOL_OPS:
            assert fold.arith(kind, ct.BOOL, True, False) in (True, False)


class TestCompareTable:
    @pytest.mark.parametrize("prim", INT_TYPES, ids=str)
    @given(a=raw, b=raw)
    def test_full_relational_table(self, prim, a, b):
        width = prim.bitwidth
        a, b = _mask(a, width), _mask(b, width)
        if prim.is_signed:
            va, vb = _sig(a, width), _sig(b, width)
        else:
            va, vb = a, b
        table = {CmpRel.EQ: va == vb, CmpRel.NE: va != vb,
                 CmpRel.LT: va < vb, CmpRel.LE: va <= vb,
                 CmpRel.GT: va > vb, CmpRel.GE: va >= vb}
        for rel, want in table.items():
            assert fold.compare(rel, prim, a, b) == want, (rel, prim, a, b)

"""Shared helpers for the test suite: tiny IR builders used everywhere."""

from __future__ import annotations

from repro.core import types as ct
from repro.core.defs import Continuation
from repro.core.world import World

RET_I64 = ct.fn_type((ct.MEM, ct.I64))
FN_I64 = ct.fn_type((ct.MEM, ct.I64, RET_I64))


def make_identity(world: World, name: str = "id") -> Continuation:
    """fn id(mem, x, ret) = ret(mem, x)"""
    cont = world.continuation(FN_I64, name)
    mem, x, ret = cont.params
    world.jump(cont, ret, (mem, x))
    return cont


def make_add_const(world: World, constant: int, name: str = "addc") -> Continuation:
    """fn addc(mem, x, ret) = ret(mem, x + constant)"""
    cont = world.continuation(FN_I64, name)
    mem, x, ret = cont.params
    world.jump(cont, ret, (mem, world.add(x, world.literal(ct.I64, constant))))
    return cont


def make_fib(world: World, name: str = "fib") -> Continuation:
    """The classic doubly recursive fib, built directly as a graph."""
    fib = world.continuation(FN_I64, name)
    mem, n, ret = fib.params
    then_bb = world.basic_block((ct.MEM,), "then")
    else_bb = world.basic_block((ct.MEM,), "else")
    world.jump(fib, world.branch(),
               (mem, world.lt(n, world.literal(ct.I64, 2)), then_bb, else_bb))
    world.jump(then_bb, ret, (then_bb.params[0], n))
    k1 = world.continuation(RET_I64, "k1")
    k2 = world.continuation(RET_I64, "k2")
    world.jump(else_bb, fib,
               (else_bb.params[0], world.sub(n, world.one(ct.I64)), k1))
    world.jump(k1, fib,
               (k1.params[0], world.sub(n, world.literal(ct.I64, 2)), k2))
    world.jump(k2, ret, (k2.params[0], world.add(k1.params[1], k2.params[1])))
    return fib


def make_loop_sum(world: World, name: str = "sum_to") -> Continuation:
    """fn sum_to(mem, n, ret): sum of 0..n-1 via a loop of blocks."""
    f = world.continuation(FN_I64, name)
    mem, n, ret = f.params
    head = world.basic_block((ct.I64, ct.I64, ct.MEM), "head")
    i, acc, hmem = head.params
    body = world.basic_block((ct.MEM,), "body")
    exit_ = world.basic_block((ct.MEM,), "exit")
    world.jump(f, head, (world.zero(ct.I64), world.zero(ct.I64), mem))
    world.jump(head, world.branch(), (hmem, world.lt(i, n), body, exit_))
    world.jump(body, head,
               (world.add(i, world.one(ct.I64)), world.add(acc, i),
                body.params[0]))
    world.jump(exit_, ret, (exit_.params[0], acc))
    return f

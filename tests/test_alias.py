"""Hypothesis properties for the alias analysis (``core/alias.py``).

The fuzz oracle checks mem_opt end to end; this file pins the *lattice*
itself against an independent model — the graph interpreter's runtime
addresses.  Covered, per the ISSUE: Must implies equal runtime address
(and Not implies distinct), symmetry, join monotonicity (coarsening a
literal index to a dynamic one never manufactures separation), and the
conservatism of escaped pointers (a leaked pointer is May against
everything, whatever its root says).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.backend.interp import Interpreter, MemToken
from repro.core import types as ct
from repro.core.alias import MAY, MUST, NOT, AliasAnalysis
from repro.core.world import World

RET_I64 = ct.fn_type((ct.MEM, ct.I64))
ARR8 = ct.definite_array_type(ct.I64, 8)

# A pointer descriptor: (base index, component).  Component ``None`` is
# the base itself; ``("lit", k)`` a literal lea; ``("var", n)`` a lea
# through the n-th integer parameter (a dynamic index).
_COMPONENT = st.one_of(
    st.none(),
    st.tuples(st.just("lit"), st.integers(0, 7)),
    st.tuples(st.just("var"), st.integers(0, 1)),
)
_PTR = st.tuples(st.integers(0, 2), _COMPONENT)


def _build():
    """Two stack arrays and one heap array in one function's scope."""
    world = World("alias_prop")
    fn = world.continuation(ct.fn_type((ct.MEM, ct.I64, ct.I64, RET_I64)),
                            "f")
    mem0, i, j, ret = fn.params
    mem1, frame = world.enter(mem0)
    a = world.slot(ARR8, frame, "a")
    b = world.slot(ARR8, frame, "b")
    mem2, h = world.alloc(mem1, ARR8)
    world.jump(fn, ret, (mem2, world.literal(ct.I64, 0)))
    return world, (mem0, i, j), (a, b, h)


def _mk(world: World, bases, params, descriptor):
    base_index, component = descriptor
    base = bases[base_index]
    if component is None:
        return base
    kind, value = component
    if kind == "lit":
        return world.lea(base, value)
    return world.lea(base, params[value])


class TestLatticeProperties:
    @given(_PTR, _PTR)
    @settings(max_examples=80, deadline=None)
    def test_symmetry(self, pd, qd):
        world, (mem0, i, j), bases = _build()
        p = _mk(world, bases, (i, j), pd)
        q = _mk(world, bases, (i, j), qd)
        aa = AliasAnalysis(world)
        assert aa.alias(p, q) == aa.alias(q, p)

    @given(_PTR)
    @settings(max_examples=30, deadline=None)
    def test_reflexivity(self, pd):
        world, (mem0, i, j), bases = _build()
        p = _mk(world, bases, (i, j), pd)
        assert AliasAnalysis(world).alias(p, p) == MUST

    @given(_PTR, _PTR, st.integers(0, 7), st.integers(0, 7))
    @settings(max_examples=100, deadline=None)
    def test_runtime_addresses_respect_verdicts(self, pd, qd, iv, jv):
        """Must => the two pointers evaluate to the same runtime
        address; Not => they never can.  (May claims nothing.)"""
        world, (mem0, i, j), bases = _build()
        p = _mk(world, bases, (i, j), pd)
        q = _mk(world, bases, (i, j), qd)
        verdict = AliasAnalysis(world).alias(p, q)
        interp = Interpreter(world)
        env = {mem0: MemToken(), i: iv, j: jv}
        cache: dict = {}
        vp = interp._eval(p, env, cache)
        vq = interp._eval(q, env, cache)
        if verdict == MUST:
            assert vp == vq
        elif verdict == NOT:
            assert vp != vq

    @given(st.integers(0, 2), st.integers(0, 7), _PTR)
    @settings(max_examples=80, deadline=None)
    def test_join_monotonicity(self, base_index, lit, qd):
        """Coarsening a literal index to a dynamic one moves the verdict
        only *up* the lattice toward May — it can never manufacture a
        Not that the precise pointer did not have, nor a Must against a
        different def."""
        world, (mem0, i, j), bases = _build()
        p_lit = world.lea(bases[base_index], lit)
        p_dyn = world.lea(bases[base_index], i)
        q = _mk(world, bases, (i, j), qd)
        aa = AliasAnalysis(world)
        if aa.alias(p_dyn, q) == NOT:
            assert aa.alias(p_lit, q) == NOT
        if q is not p_dyn:
            assert aa.alias(p_dyn, q) != MUST


class TestEscapeConservatism:
    @given(st.integers(0, 7), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_leaked_pointer_is_may_against_everything(self, ka, kb):
        """A slot pointer passed as a jump argument escapes; after the
        leak every verdict involving its root degrades to May — even
        against a distinct slot that would otherwise be Not."""
        world = World("alias_escape")
        sink_t = ct.fn_type((ct.MEM, ct.ptr_type(ARR8)))
        fn = world.continuation(ct.fn_type((ct.MEM, sink_t)), "f")
        mem0, sink = fn.params
        mem1, frame = world.enter(mem0)
        s1 = world.slot(ARR8, frame, "s1")
        s2 = world.slot(ARR8, frame, "s2")
        s3 = world.slot(ARR8, frame, "s3")
        world.jump(fn, sink, (mem1, s1))  # s1 leaks into the continuation
        aa = AliasAnalysis(world)
        assert aa.escaped(s1)
        assert not aa.escaped(s2)
        assert aa.alias(s1, s2) == MAY
        assert aa.alias(world.lea(s1, ka), world.lea(s2, kb)) == MAY
        # Pointers whose roots did not leak keep their precise verdicts.
        assert aa.alias(world.lea(s2, ka), world.lea(s3, kb)) == NOT

    def test_frame_escape_taints_every_slot(self):
        """A frame used as anything but a slot operand takes all its
        slots with it: slot-vs-slot verdicts degrade to May."""
        world = World("alias_frame_escape")
        sink_t = ct.fn_type((ct.MEM, ct.FRAME))
        fn = world.continuation(ct.fn_type((ct.MEM, sink_t)), "f")
        mem0, sink = fn.params
        mem1, frame = world.enter(mem0)
        s1 = world.slot(ARR8, frame, "s1")
        s2 = world.slot(ARR8, frame, "s2")
        world.jump(fn, sink, (mem1, frame))  # the whole frame leaks
        aa = AliasAnalysis(world)
        assert aa.escaped(s1) and aa.escaped(s2)
        assert aa.alias(s1, s2) == MAY

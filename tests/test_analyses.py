"""The incremental analysis manager: generations, patching, identity.

Three layers of guarantees, mirroring ``core/analyses.py``:

* every world-mutating API strictly increases ``World.generation`` (the
  cache key) and nothing ever rewinds it;
* cached analyses are *patched*, not dropped: new references to an entry
  are no-ops, new edges into a scope grow it in place, member rewires
  re-flood and keep the object when membership is unchanged, and entry
  body rewires refresh only the CFG — while anything that cannot report
  what it touched still loses everything;
* with caching on, the optimization pipeline produces byte-identical
  printed IR and identical program behaviour to the uncached pipeline —
  and a hypothesis-driven edit-script property asserts patched
  Scope/CFG/Schedule artifacts equal from-scratch recomputations after
  every single edit.
"""

from __future__ import annotations

import pytest

from repro.core import types as ct
from repro.core.cfg import CFG
from repro.core.domtree import DomTree
from repro.core.schedule import Schedule
from repro.core.scope import Scope, top_level_of
from repro.core.snapshot import restore_world, snapshot_world
from repro.core.world import World

from .helpers import (FN_I64, RET_I64, make_add_const, make_fib,
                      make_identity, make_loop_sum)


@pytest.fixture
def world():
    return World("t")


def constructed_during(fn):
    before = Scope.constructed
    result = fn()
    return result, Scope.constructed - before


class TestGenerationMonotone:
    """Every mutation strictly increases the generation; nothing rewinds it."""

    def test_continuation_creation(self, world):
        g = world.generation
        world.continuation(FN_I64, "f")
        assert world.generation > g

    def test_primop_creation(self, world):
        f = make_identity(world)
        g = world.generation
        world.add(f.param(1), world.literal(ct.I64, 41))
        assert world.generation > g

    def test_gvn_hit_never_rewinds(self, world):
        f = make_identity(world)
        world.add(f.param(1), world.literal(ct.I64, 41))
        g = world.generation
        world.add(f.param(1), world.literal(ct.I64, 41))  # same node
        assert world.generation >= g

    def test_jump_retarget(self, world):
        f = make_identity(world)
        mem, x, ret = f.params
        g = world.generation
        world.jump(f, ret, (mem, world.add(x, world.one(ct.I64))))
        assert world.generation > g

    def test_append_and_remove_param(self, world):
        f = world.continuation(FN_I64, "f")
        g = world.generation
        f.append_param(ct.I64, "extra")
        assert world.generation > g
        g = world.generation
        f.remove_param(f.num_params - 1)
        assert world.generation > g

    def test_make_and_remove_external(self, world):
        f = make_identity(world)
        g = world.generation
        world.make_external(f)
        assert world.generation > g
        g = world.generation
        world.remove_external(f)
        assert world.generation > g

    def test_snapshot_restore_advances(self, world):
        make_fib(world)
        snap = snapshot_world(world)
        g = world.generation
        restore_world(snap, into=world)
        assert world.generation > g, \
            "a restored world must never look unmutated to caches"

    def test_structural_generation_ignores_primops(self, world):
        """Primop creation bumps the full generation but not the
        structural one — a fresh primop has no users, so it cannot
        change which continuations are nested."""
        f = make_identity(world)
        sg = world.structural_generation
        g = world.generation
        world.add(f.param(1), world.literal(ct.I64, 5))
        assert world.generation > g
        assert world.structural_generation == sg
        world.continuation(RET_I64, "k")
        assert world.structural_generation > sg

    def test_mutation_trace_is_strictly_increasing(self, world):
        """Property-style sweep: a mixed mutation sequence never repeats
        or decreases the generation at any step."""
        f = make_identity(world)
        mem, x, ret = f.params
        mutations = [
            lambda: world.continuation(RET_I64, "k"),
            lambda: world.add(x, world.literal(ct.I64, 7)),
            lambda: world.jump(f, ret, (mem, world.mul(x, x))),
            lambda: f.append_param(ct.I64, "p"),
            lambda: f.remove_param(f.num_params - 1),
            lambda: world.make_external(f),
            lambda: world.remove_external(f),
            lambda: restore_world(snapshot_world(world), into=world),
        ]
        seen = [world.generation]
        for mutate in mutations:
            mutate()
            assert world.generation > seen[-1]
            seen.append(world.generation)


class TestManagerInvalidation:
    def test_scope_hit_is_identical_object(self, world):
        f = make_fib(world)
        manager = world.analyses
        first = manager.scope(f)
        second, built = constructed_during(lambda: manager.scope(f))
        assert second is first
        assert built == 0
        assert manager.stats.hits >= 1

    def test_entry_reference_is_noop(self, world):
        """A new call *to* a cached entry must not touch its artifacts:
        the flood never follows uses of the entry, so a mere reference
        cannot change membership.  This is the most common mutation in a
        specializing pipeline, and patching turns it into a cache hit."""
        f = make_fib(world)
        manager = world.analyses
        scope = manager.scope(f)
        cfg = manager.cfg(f)
        sched = manager.schedule(f)
        caller = world.continuation(FN_I64, "caller")
        cm, cx, cret = caller.params
        world.jump(caller, f, (cm, cx, cret))
        second, built = constructed_during(lambda: manager.scope(f))
        assert second is scope
        assert built == 0
        assert manager.cfg(f) is cfg
        assert manager.schedule(f) is sched

    def test_new_edge_grows_scope_in_place(self, world):
        """A new primop using a member splices into the cached scope
        without a re-flood, and the patched membership is bit-identical
        to a from-scratch recomputation."""
        f = make_fib(world)
        manager = world.analyses
        scope = manager.scope(f)
        patches = manager.stats.scope_patches
        op = world.mul(f.param(1), world.literal(ct.I64, 3))
        second, built = constructed_during(lambda: manager.scope(f))
        assert second is scope, "growth must keep the scope object"
        assert built == 0, "growth must not re-flood"
        assert op in scope
        assert manager.stats.scope_patches == patches + 1
        assert list(scope._defs) == list(Scope(f)._defs)

    def test_entry_body_rewire_keeps_scope_refreshes_cfg(self, world):
        """Rewiring the entry's own body never changes its membership
        (the flood inserts users of members, not operands of the entry),
        so the scope survives; only the CFG is refreshed — in place, on
        the same object."""
        f = make_fib(world)
        mem, n, ret = f.params
        manager = world.analyses
        scope = manager.scope(f)
        cfg = manager.cfg(f)
        sched = manager.schedule(f)
        world.jump(f, ret, (mem, n))
        assert manager.scope(f) is scope
        assert list(scope._defs) == list(Scope(f)._defs)
        refreshed = manager.cfg(f)
        assert refreshed is cfg, "the CFG object survives, refreshed"
        assert len(cfg.nodes()) == 2, "only entry and exit stay reachable"
        assert manager.schedule(f) is not sched

    def test_member_rewire_refloods_and_survives(self, world):
        """Rewiring an inner member re-floods at the next query; when
        membership comes back identical the old scope object (and a CFG
        whose dirty successors match) survive."""
        f = make_fib(world)
        mem, n, ret = f.params
        manager = world.analyses
        scope = manager.scope(f)
        cfg = manager.cfg(f)
        k2 = next(c for c in scope.continuations() if c.name == "k2")
        k1 = next(c for c in scope.continuations() if c.name == "k1")
        # Same control shape (jump to ret), different value operands.
        world.jump(k2, ret, (k2.params[0], k1.params[1]))
        survivals = manager.stats.scope_survivals
        assert manager.scope(f) is scope
        assert manager.stats.scope_survivals == survivals + 1
        assert list(scope._defs) == list(Scope(f)._defs)
        assert manager.cfg(f) is cfg

    def test_member_unset_body_shrinks_scope(self, world):
        """A member losing the use-chain that kept defs inside forces a
        replacement: the re-flood diff detects the shrink."""
        f = make_fib(world)
        manager = world.analyses
        scope = manager.scope(f)
        k2 = next(c for c in scope.continuations() if c.name == "k2")
        invalidations = manager.stats.invalidations
        k2.unset_body()
        second = manager.scope(f)
        assert second is not scope
        assert k2 not in second
        assert manager.stats.invalidations == invalidations + 1
        assert list(second._defs) == list(Scope(f)._defs)

    def test_untouched_scope_survives(self, world):
        f = make_identity(world, "f")
        g = make_add_const(world, 3, "g")
        manager = world.analyses
        scope_f = manager.scope(f)
        manager.scope(g)
        gm, gx, gret = g.params
        world.jump(g, gret, (gm, world.mul(gx, gx)))
        assert manager.scope(f) is scope_f, \
            "mutating g must not evict f's cached scope"

    def test_restore_drops_everything(self, world):
        f = make_fib(world)
        manager = world.analyses
        cached = manager.scope(f)
        restore_world(snapshot_world(world), into=world)
        drop_alls = manager.stats.drop_alls
        assert manager.scope(f) is not cached
        assert manager.stats.drop_alls == drop_alls + 1

    def test_artifacts_survive_unrelated_storm(self, world):
        """Thousands of mutations that never touch a cached scope's
        members leave its artifacts live — the old manager escalated to
        drop-all once its pending set overflowed a fixed cap."""
        f = make_fib(world)
        manager = world.analyses
        scope = manager.scope(f)
        cfg = manager.cfg(f)
        flood = [world.literal(ct.I64, i) for i in range(5000)]
        manager.invalidate(flood)
        drop_alls = manager.stats.drop_alls
        second, built = constructed_during(lambda: manager.scope(f))
        assert second is scope
        assert built == 0
        assert manager.cfg(f) is cfg
        assert manager.stats.drop_alls == drop_alls

    def test_invalidate_none_is_drop_all(self, world):
        f = make_fib(world)
        manager = world.analyses
        cached = manager.scope(f)
        manager.invalidate(None)
        assert manager.scope(f) is not cached

    def test_disabled_manager_builds_fresh(self, world):
        f = make_fib(world)
        manager = world.analyses
        manager.set_enabled(False)
        assert manager.scope(f) is not manager.scope(f)

    def test_non_incremental_drops_on_touch(self, world):
        """``incremental=False`` restores the historical drop-on-touch
        behaviour — the differential baseline for the patching logic."""
        f = make_fib(world)
        mem, n, ret = f.params
        manager = world.analyses
        manager.incremental = False
        first = manager.scope(f)
        world.jump(f, ret, (mem, n))
        assert manager.scope(f) is not first

    def test_derived_analyses_follow_scope(self, world):
        f = make_fib(world)
        manager = world.analyses
        cfg = manager.cfg(f)
        dom = manager.domtree(f)
        loops = manager.looptree(f)
        sched = manager.schedule(f)
        assert manager.cfg(f) is cfg
        assert manager.domtree(f) is dom
        assert manager.looptree(f) is loops
        assert manager.schedule(f) is sched
        mem, n, ret = f.params
        world.jump(f, ret, (mem, n))
        # The entry rewire refreshes the CFG in place and rebuilds what
        # hangs off its (changed) edges.
        assert manager.cfg(f) is cfg
        assert manager.looptree(f) is not loops
        assert manager.schedule(f) is not sched


class TestTopLevelSweep:
    def test_cached_call_builds_no_scopes(self, world):
        make_fib(world)
        make_identity(world)
        manager = world.analyses
        first = manager.top_level()
        second, built = constructed_during(manager.top_level)
        assert second == first
        assert built == 0, \
            "an unmutated world must answer top_level from cache"

    def test_fresh_sweep_is_single_pass(self, world):
        """The shared sweep builds at most one scope per continuation
        (the old implementation recomputed inner scopes per candidate)."""
        make_fib(world)
        make_identity(world)
        make_add_const(world, 9)
        _, built = constructed_during(lambda: top_level_of(world))
        assert built <= len(world.continuations())

    def test_new_continuation_invalidates(self, world):
        f = make_identity(world)
        manager = world.analyses
        manager.top_level()
        g = make_add_const(world, 1, "late")
        tops = manager.top_level()
        assert f in tops and g in tops

    def test_primop_churn_keeps_top_level_cached(self, world):
        """Minting primops must not re-run the whole-world sweep: the
        result is stamped with the structural generation."""
        f = make_fib(world)
        manager = world.analyses
        manager.top_level()
        for i in range(10):
            world.add(f.param(1), world.literal(ct.I64, i))
        _, built = constructed_during(manager.top_level)
        hits = manager.stats.hits
        manager.top_level()
        assert manager.stats.hits == hits + 1
        assert built == 0


class TestDominanceFree:
    """The scheduler answers dominance from CFG availability bitmasks;
    no default pipeline path may construct an explicit DomTree."""

    def _check_against_tree(self, cfg):
        tree = DomTree(cfg)
        nodes = cfg.nodes()
        for n in nodes:
            assert cfg.dom_depth(n) == tree.depth(n)
            assert cfg.idom(n) is tree.idom(n)
        for a in nodes:
            for b in nodes:
                assert cfg.dominates(a, b) == tree.dominates(a, b)
                assert cfg.dom_lca(a, b) is tree.lca(a, b)

    def test_masks_match_domtree(self, world):
        for maker in (make_identity, make_fib, make_loop_sum):
            f = maker(World("t"))
            self._check_against_tree(CFG(Scope(f)))

    def test_default_pipeline_builds_no_domtrees(self):
        from repro import compile_source
        from repro.backend.interp import Interpreter
        from repro.programs.suite import by_name

        program = by_name("quicksort")
        before = DomTree.constructed
        compiled = compile_source(program.source)
        Interpreter(compiled).call(program.entry, *program.test_args)
        assert DomTree.constructed == before, \
            "optimize + interp must run dominance-free"


def _cfg_fingerprint(cfg):
    def key(n):
        return getattr(n, "gid", -1)

    return [
        (key(n), sorted(key(s) for s in cfg.succs(n)), key(cfg.idom(n)))
        for n in cfg.nodes()
    ]


def _schedule_fingerprint(sched):
    return {
        block.gid: [op.gid for op in sched.ops_in(block)]
        for block in sched.blocks()
    }


class TestEditScriptProperty:
    """Hypothesis-driven random edit scripts: after *every* edit, the
    patched Scope/CFG/Schedule must equal from-scratch recomputations.

    This is the in-process mirror of the fuzz oracle's
    ``incremental(static)`` stage: the oracle checks end-to-end compiles
    diverge nowhere; this property localizes a patching bug to the exact
    edit that broke an artifact.
    """

    ENTRIES = ("fib", "sum_to", "id")

    def _build(self):
        world = World("t")
        fib = make_fib(world)
        loop = make_loop_sum(world)
        ident = make_identity(world)
        manager = world.analyses
        return world, {"fib": fib, "sum_to": loop, "id": ident}, manager

    def _apply_edit(self, world, fns, code, arg):
        fib = fns["fib"]
        mem, n, ret = fib.params
        if code == 0:      # new primop using a member (growth)
            world.add(n, world.literal(ct.I64, arg))
        elif code == 1:    # new call to a cached entry (entry-ref no-op)
            caller = world.continuation(FN_I64, f"caller{arg}")
            cm, cx, cret = caller.params
            world.jump(caller, fib, (cm, cx, cret))
        elif code == 2:    # entry body rewire (CFG-only)
            world.jump(fib, ret, (mem, world.literal(ct.I64, arg)))
        elif code == 3:    # inner member rewire (re-flood + diff)
            scope = Scope(fib)
            inner = [c for c in scope.continuations()
                     if c is not fib and c.has_body()]
            if inner:
                k = inner[arg % len(inner)]
                world.jump(k, ret, (k.params[0] if k.num_params else mem,
                                    world.literal(ct.I64, arg)))
        elif code == 4:    # member loses its body (shrink)
            scope = Scope(fib)
            inner = [c for c in scope.continuations()
                     if c is not fib and c.has_body()]
            if inner:
                inner[arg % len(inner)].unset_body()
        elif code == 5:    # structural surgery on an unrelated cont
            k = world.continuation(RET_I64, f"s{arg}")
            k.append_param(ct.I64, "extra")
            k.remove_param(k.num_params - 1)
        elif code == 6:    # external marking (structural note)
            world.make_external(fib)
            world.remove_external(fib)
        elif code == 7:    # wholesale drop
            world.analyses.invalidate(None)

    def _assert_consistent(self, fns, manager):
        for entry in fns.values():
            scope = manager.scope(entry)
            fresh = Scope(entry)
            assert list(scope._defs) == list(fresh._defs), \
                f"patched scope of {entry.name} diverged"
            cfg = manager.cfg(entry)
            fresh_cfg = CFG(fresh)
            assert _cfg_fingerprint(cfg) == _cfg_fingerprint(fresh_cfg), \
                f"patched CFG of {entry.name} diverged"
            sched = manager.schedule(entry)
            assert (_schedule_fingerprint(sched)
                    == _schedule_fingerprint(Schedule(fresh))), \
                f"patched schedule of {entry.name} diverged"

    def test_edit_scripts(self):
        hypothesis = pytest.importorskip("hypothesis")
        given, settings, st = (hypothesis.given, hypothesis.settings,
                               hypothesis.strategies)

        @given(st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=12))
        @settings(max_examples=60, deadline=None)
        def run(script):
            world, fns, manager = self._build()
            # Warm every cache before the first edit.
            self._assert_consistent(fns, manager)
            for code, arg in script:
                self._apply_edit(world, fns, code, arg)
                self._assert_consistent(fns, manager)

        run()


class TestCachedPipelineIdentity:
    PROGRAMS = ("quicksort", "sort_hof", "compose", "sieve")

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_bit_identical_ir_and_behaviour(self, name):
        from repro import compile_source
        from repro.backend.interp import Interpreter
        from repro.core.printer import print_world
        from repro.programs.suite import by_name
        from repro.transform.pipeline import OptimizeOptions

        program = by_name(name)
        world_off = compile_source(
            program.source, options=OptimizeOptions(cache_analyses=False))
        world_on = compile_source(
            program.source, options=OptimizeOptions(cache_analyses=True))
        assert print_world(world_off) == print_world(world_on)
        ref = Interpreter(world_off)
        got = Interpreter(world_on)
        assert (ref.call(program.entry, *program.test_args)
                == got.call(program.entry, *program.test_args))
        assert "".join(ref.output) == "".join(got.output)

    @pytest.mark.parametrize("name", PROGRAMS[:2])
    def test_incremental_matches_drop_on_touch(self, name):
        from repro import compile_source
        from repro.core.printer import print_world
        from repro.programs.suite import by_name
        from repro.transform.pipeline import OptimizeOptions

        program = by_name(name)
        world_inc = compile_source(
            program.source, options=OptimizeOptions(incremental=True))
        world_drop = compile_source(
            program.source, options=OptimizeOptions(incremental=False))
        assert print_world(world_inc) == print_world(world_drop)

    def test_cache_telemetry(self):
        from repro.frontend import compile_to_ast, emit_module
        from repro.programs.suite import by_name
        from repro.transform.pipeline import OptimizeOptions, optimize

        program = by_name("quicksort")
        module = compile_to_ast(program.source)
        world = World("t")
        emit_module(module, world)
        stats = optimize(world,
                         options=OptimizeOptions(cache_analyses=True))
        assert stats.analysis_cache["enabled"] == 1
        assert stats.analysis_cache["hits"] > 0
        assert stats.checkpoints_reused > 0, \
            "quiescent phases should reuse the previous checkpoint"

        module = compile_to_ast(program.source)
        world = World("t")
        emit_module(module, world)
        stats = optimize(world,
                         options=OptimizeOptions(cache_analyses=False))
        assert stats.analysis_cache["enabled"] == 0
        assert stats.checkpoints_reused == 0


class TestOracleCacheCheck:
    def test_fuzz_smoke_with_cache_check(self):
        from repro.fuzz.gen import generate_program
        from repro.fuzz.oracle import OracleConfig, run_oracle

        for seed in range(4):
            prog = generate_program(seed)
            config = OracleConfig(run_c=False, run_pgo=False,
                                  check_cache=True, record={})
            failure = run_oracle(prog, config)
            assert failure is None, failure.describe()
            assert "cache(static)" in config.record["paths"]

    def test_fuzz_smoke_with_incremental_check(self):
        from repro.fuzz.gen import generate_program
        from repro.fuzz.oracle import OracleConfig, run_oracle

        for seed in range(4):
            prog = generate_program(seed)
            config = OracleConfig(run_c=False, run_pgo=False,
                                  check_incremental=True, record={})
            failure = run_oracle(prog, config)
            assert failure is None, failure.describe()
            assert "incremental(static)" in config.record["paths"]

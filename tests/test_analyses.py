"""The incremental analysis manager: generations, invalidation, identity.

Three layers of guarantees, mirroring ``core/analyses.py``:

* every world-mutating API strictly increases ``World.generation`` (the
  cache key) and nothing ever rewinds it;
* cached analyses are dropped exactly when a touched def is a member of
  their scope — hits return the identical object, misses rebuild, and
  anything that cannot report what it touched loses everything;
* with caching on, the optimization pipeline produces byte-identical
  printed IR and identical program behaviour to the uncached pipeline.
"""

from __future__ import annotations

import pytest

from repro.core import types as ct
from repro.core.analyses import PENDING_CAP
from repro.core.scope import Scope, top_level_of
from repro.core.snapshot import restore_world, snapshot_world
from repro.core.world import World

from .helpers import FN_I64, RET_I64, make_add_const, make_fib, make_identity


@pytest.fixture
def world():
    return World("t")


def constructed_during(fn):
    before = Scope.constructed
    result = fn()
    return result, Scope.constructed - before


class TestGenerationMonotone:
    """Every mutation strictly increases the generation; nothing rewinds it."""

    def test_continuation_creation(self, world):
        g = world.generation
        world.continuation(FN_I64, "f")
        assert world.generation > g

    def test_primop_creation(self, world):
        f = make_identity(world)
        g = world.generation
        world.add(f.param(1), world.literal(ct.I64, 41))
        assert world.generation > g

    def test_gvn_hit_never_rewinds(self, world):
        f = make_identity(world)
        world.add(f.param(1), world.literal(ct.I64, 41))
        g = world.generation
        world.add(f.param(1), world.literal(ct.I64, 41))  # same node
        assert world.generation >= g

    def test_jump_retarget(self, world):
        f = make_identity(world)
        mem, x, ret = f.params
        g = world.generation
        world.jump(f, ret, (mem, world.add(x, world.one(ct.I64))))
        assert world.generation > g

    def test_append_and_remove_param(self, world):
        f = world.continuation(FN_I64, "f")
        g = world.generation
        f.append_param(ct.I64, "extra")
        assert world.generation > g
        g = world.generation
        f.remove_param(f.num_params - 1)
        assert world.generation > g

    def test_make_and_remove_external(self, world):
        f = make_identity(world)
        g = world.generation
        world.make_external(f)
        assert world.generation > g
        g = world.generation
        world.remove_external(f)
        assert world.generation > g

    def test_snapshot_restore_advances(self, world):
        make_fib(world)
        snap = snapshot_world(world)
        g = world.generation
        restore_world(snap, into=world)
        assert world.generation > g, \
            "a restored world must never look unmutated to caches"

    def test_mutation_trace_is_strictly_increasing(self, world):
        """Property-style sweep: a mixed mutation sequence never repeats
        or decreases the generation at any step."""
        f = make_identity(world)
        mem, x, ret = f.params
        mutations = [
            lambda: world.continuation(RET_I64, "k"),
            lambda: world.add(x, world.literal(ct.I64, 7)),
            lambda: world.jump(f, ret, (mem, world.mul(x, x))),
            lambda: f.append_param(ct.I64, "p"),
            lambda: f.remove_param(f.num_params - 1),
            lambda: world.make_external(f),
            lambda: world.remove_external(f),
            lambda: restore_world(snapshot_world(world), into=world),
        ]
        seen = [world.generation]
        for mutate in mutations:
            mutate()
            assert world.generation > seen[-1]
            seen.append(world.generation)


class TestManagerInvalidation:
    def test_scope_hit_is_identical_object(self, world):
        f = make_fib(world)
        manager = world.analyses
        first = manager.scope(f)
        second, built = constructed_during(lambda: manager.scope(f))
        assert second is first
        assert built == 0
        assert manager.stats.hits >= 1

    def test_touched_member_drops_scope(self, world):
        f = make_identity(world)
        mem, x, ret = f.params
        manager = world.analyses
        first = manager.scope(f)
        world.jump(f, ret, (mem, world.add(x, world.one(ct.I64))))
        second = manager.scope(f)
        assert second is not first
        assert manager.stats.invalidations >= 1

    def test_untouched_scope_survives(self, world):
        f = make_identity(world, "f")
        g = make_add_const(world, 3, "g")
        manager = world.analyses
        scope_f = manager.scope(f)
        scope_g = manager.scope(g)
        gm, gx, gret = g.params
        world.jump(g, gret, (gm, world.mul(gx, gx)))
        assert manager.scope(f) is scope_f, \
            "mutating g must not evict f's cached scope"
        assert manager.scope(g) is not scope_g

    def test_restore_drops_everything(self, world):
        f = make_fib(world)
        manager = world.analyses
        cached = manager.scope(f)
        restore_world(snapshot_world(world), into=world)
        drop_alls = manager.stats.drop_alls
        assert manager.scope(f) is not cached
        assert manager.stats.drop_alls == drop_alls + 1

    def test_pending_overflow_escalates_to_drop_all(self, world):
        f = make_fib(world)
        manager = world.analyses
        manager.scope(f)
        flood = [world.literal(ct.I64, i) for i in range(PENDING_CAP + 1)]
        manager.invalidate(flood)
        before = manager.stats.drop_alls
        manager.scope(f)
        assert manager.stats.drop_alls == before + 1

    def test_invalidate_none_is_drop_all(self, world):
        f = make_fib(world)
        manager = world.analyses
        cached = manager.scope(f)
        manager.invalidate(None)
        assert manager.scope(f) is not cached

    def test_disabled_manager_builds_fresh(self, world):
        f = make_fib(world)
        manager = world.analyses
        manager.set_enabled(False)
        assert manager.scope(f) is not manager.scope(f)

    def test_derived_analyses_follow_scope(self, world):
        f = make_fib(world)
        manager = world.analyses
        cfg = manager.cfg(f)
        dom = manager.domtree(f)
        loops = manager.looptree(f)
        sched = manager.schedule(f)
        assert manager.cfg(f) is cfg
        assert manager.domtree(f) is dom
        assert manager.looptree(f) is loops
        assert manager.schedule(f) is sched
        mem, n, ret = f.params
        world.jump(f, ret, (mem, n))
        assert manager.cfg(f) is not cfg


class TestTopLevelSweep:
    def test_cached_call_builds_no_scopes(self, world):
        make_fib(world)
        make_identity(world)
        manager = world.analyses
        first = manager.top_level()
        second, built = constructed_during(manager.top_level)
        assert second == first
        assert built == 0, \
            "an unmutated world must answer top_level from cache"

    def test_fresh_sweep_is_single_pass(self, world):
        """The shared sweep builds at most one scope per continuation
        (the old implementation recomputed inner scopes per candidate)."""
        make_fib(world)
        make_identity(world)
        make_add_const(world, 9)
        _, built = constructed_during(lambda: top_level_of(world))
        assert built <= len(world.continuations())

    def test_new_continuation_invalidates(self, world):
        f = make_identity(world)
        manager = world.analyses
        manager.top_level()
        g = make_add_const(world, 1, "late")
        tops = manager.top_level()
        assert f in tops and g in tops


class TestCachedPipelineIdentity:
    PROGRAMS = ("quicksort", "sort_hof", "compose", "sieve")

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_bit_identical_ir_and_behaviour(self, name):
        from repro import compile_source
        from repro.backend.interp import Interpreter
        from repro.core.printer import print_world
        from repro.programs.suite import by_name
        from repro.transform.pipeline import OptimizeOptions

        program = by_name(name)
        world_off = compile_source(
            program.source, options=OptimizeOptions(cache_analyses=False))
        world_on = compile_source(
            program.source, options=OptimizeOptions(cache_analyses=True))
        assert print_world(world_off) == print_world(world_on)
        ref = Interpreter(world_off)
        got = Interpreter(world_on)
        assert (ref.call(program.entry, *program.test_args)
                == got.call(program.entry, *program.test_args))
        assert "".join(ref.output) == "".join(got.output)

    def test_cache_telemetry(self):
        from repro.frontend import compile_to_ast, emit_module
        from repro.programs.suite import by_name
        from repro.transform.pipeline import OptimizeOptions, optimize

        program = by_name("quicksort")
        module = compile_to_ast(program.source)
        world = World("t")
        emit_module(module, world)
        stats = optimize(world,
                         options=OptimizeOptions(cache_analyses=True))
        assert stats.analysis_cache["enabled"] == 1
        assert stats.analysis_cache["hits"] > 0
        assert stats.checkpoints_reused > 0, \
            "quiescent phases should reuse the previous checkpoint"

        module = compile_to_ast(program.source)
        world = World("t")
        emit_module(module, world)
        stats = optimize(world,
                         options=OptimizeOptions(cache_analyses=False))
        assert stats.analysis_cache["enabled"] == 0
        assert stats.checkpoints_reused == 0


class TestOracleCacheCheck:
    def test_fuzz_smoke_with_cache_check(self):
        from repro.fuzz.gen import generate_program
        from repro.fuzz.oracle import OracleConfig, run_oracle

        for seed in range(4):
            prog = generate_program(seed)
            config = OracleConfig(run_c=False, run_pgo=False,
                                  check_cache=True, record={})
            failure = run_oracle(prog, config)
            assert failure is None, failure.describe()
            assert "cache(static)" in config.record["paths"]

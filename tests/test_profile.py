"""The profile subsystem: collection, model, determinism, and the
two-phase PGO driver (experiment F4's machinery).

The load-bearing invariants:

* instrumentation is *observation only* — instrumented and plain runs
  produce identical results and retire identical instruction counts;
* profiling the same program on the same inputs twice yields identical
  profiles (stable site IDs, deterministic ordering);
* profiles survive a JSON round trip and merge by summing counts;
* ``compile_profiled`` preserves program semantics and never increases
  the dynamic instruction count on the training workload's program.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import compile_source
from repro.backend import bytecode as bc
from repro.backend.codegen import compile_world
from repro.profile import (
    Profile,
    ProfileCollector,
    collect_profile,
    compile_profiled,
    instrument,
)
from repro.programs.suite import ALL_PROGRAMS, MANDELBROT, NQUEENS

LOOPY = """
fn main(n: i64) -> i64 {
    let mut acc = 0;
    for i in 0..n {
        let mut j = 0;
        while j < i {
            acc += j * i;
            j += 1;
        }
    }
    acc
}
"""

CALLS = """
fn helper(x: i64) -> i64 { x * x + 1 }
fn main(n: i64) -> i64 {
    let mut acc = 0;
    for i in 0..n { acc += helper(i); }
    acc
}
"""


def _profile_of(source: str, *args, optimize: bool = True) -> Profile:
    world = compile_source(source, optimize=optimize)
    compiled, collector = instrument(world)
    compiled.call("main", *args)
    return Profile.from_collector(collector, compiled.program)


# ---------------------------------------------------------------------------
# zero-overhead observation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
def test_instrumented_run_is_pure_observation(program):
    """Same results, same retired instruction count, with and without."""
    world = compile_source(program.source)
    plain = compile_world(world)
    plain_result = plain.call(program.entry, *program.test_args)

    instrumented, collector = instrument(world)
    instr_result = instrumented.call(program.entry, *program.test_args)

    assert instr_result == plain_result
    if program.test_expect is not None:
        assert plain_result == program.test_expect
    assert instrumented.vm.executed == plain.vm.executed
    assert not collector.is_empty()


def test_disabled_profiling_uses_plain_loop():
    """profile=None must select the original dispatch loop, untouched."""
    vm = bc.VM()
    assert vm.profile is None
    world = compile_source(LOOPY)
    compiled = compile_world(world)
    assert compiled.vm.profile is None


def test_site_metadata_is_inert():
    """Site labels ride on VMFunction, never in the instruction stream."""
    world = compile_source(CALLS)
    compiled = compile_world(world)
    for fn in compiled.program.functions:
        assert fn.sites["entry"] is not None
        assert all(isinstance(pc, int) for pc in fn.sites["blocks"])
        # No instruction mentions the sites dict.
        for instr in fn.code:
            assert fn.sites not in instr


# ---------------------------------------------------------------------------
# determinism & model
# ---------------------------------------------------------------------------


def test_profiling_twice_is_identical():
    p1 = _profile_of(LOOPY, 12)
    p2 = _profile_of(LOOPY, 12)
    assert p1.to_dict() == p2.to_dict()
    assert p1.to_json() == p2.to_json()


def test_profile_counts_make_sense():
    profile = _profile_of(LOOPY, 8)
    assert profile.total_loop_count() > 0
    # Two nested loops: at least two distinct headers were hot.
    assert len(profile.loops) >= 2
    # main was entered exactly once.
    assert sum(profile.entries.values()) >= 1


def test_call_sites_resolved_to_labels():
    # Unoptimized so helper survives as a real call target.
    profile = _profile_of(CALLS, 6, optimize=False)
    assert profile.call_sites, "expected at least one executed call site"
    for site in profile.call_sites:
        assert site.function and site.block and site.callee
        assert site.count > 0


def test_json_round_trip():
    profile = _profile_of(LOOPY, 10)
    restored = Profile.from_json(profile.to_json())
    assert restored.to_dict() == profile.to_dict()


def test_save_load(tmp_path):
    profile = _profile_of(LOOPY, 10)
    path = tmp_path / "p.json"
    profile.save(path)
    assert Profile.load(path).to_dict() == profile.to_dict()


def test_merge_sums_counts():
    p1 = _profile_of(LOOPY, 6)
    p2 = _profile_of(LOOPY, 6)
    merged = p1.merge(p2)
    assert merged.total_loop_count() == 2 * p1.total_loop_count()
    assert sum(merged.entries.values()) == 2 * sum(p1.entries.values())
    # Same sites, doubled counts.
    assert [s.key for s in merged.loops] == [s.key for s in p1.loops]


def test_collector_clear():
    collector = ProfileCollector()
    collector.entries[0] += 1
    collector.calls[(0, 3)] += 2
    collector.edges[(0, 5, 1)] += 3
    assert not collector.is_empty()
    collector.clear()
    assert collector.is_empty()


def test_version_mismatch_rejected():
    profile = _profile_of(LOOPY, 4)
    data = profile.to_dict()
    data["version"] = 999
    with pytest.raises(ValueError):
        Profile.from_dict(data)


# ---------------------------------------------------------------------------
# the two-phase driver
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("program", [MANDELBROT, NQUEENS],
                         ids=lambda p: p.name)
def test_compile_profiled_preserves_semantics(program):
    world = compile_source(program.source, optimize=False)

    def workload(compiled):
        compiled.call(program.entry, *program.test_args)

    compiled, profile, stats = compile_profiled(world, workload)
    assert compiled.call(program.entry, *program.test_args) \
        == program.test_expect
    assert not profile.call_sites or profile.total_call_count() >= 0
    assert stats["static"].rounds >= 1


def test_compile_profiled_never_slower_on_suite_sample():
    """PGO output retires no more instructions than the static pipeline."""
    for program in (MANDELBROT, NQUEENS):
        static = compile_world(compile_source(program.source))
        static.call(program.entry, *program.test_args)
        static_exec = static.vm.executed

        world = compile_source(program.source, optimize=False)

        def workload(compiled, _p=program):
            compiled.call(_p.entry, *_p.test_args)

        pgo, _profile, _stats = compile_profiled(world, workload)
        pgo.call(program.entry, *program.test_args)
        assert pgo.vm.executed <= static_exec


def test_collect_profile_meta():
    world = compile_source(LOOPY)
    profile = collect_profile(
        world, lambda c: c.call("main", 5), meta={"workload": "unit"})
    assert profile.meta["workload"] == "unit"


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------

VARS = ("a", "b")


def _binop(children):
    ops = st.sampled_from(["+", "-", "*", "&", "|", "^"])
    return st.tuples(ops, children, children).map(
        lambda t: f"({t[1]} {t[0]} {t[2]})"
    )


exprs = st.recursive(
    st.sampled_from(VARS) | st.integers(-20, 20).map(str),
    _binop,
    max_leaves=8,
)


@st.composite
def loop_programs(draw):
    body = draw(exprs)
    return f"""
fn main(a: i64, b: i64) -> i64 {{
    let mut acc = 0;
    for i in 0..((a & 7) + 2) {{
        acc += {body};
        acc ^= i;
    }}
    acc
}}
"""


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(source=loop_programs(), a=st.integers(-50, 50),
       b=st.integers(-50, 50))
def test_instrumentation_is_invisible_random_programs(source, a, b):
    world = compile_source(source)
    plain = compile_world(world)
    reference = plain.call("main", a, b)

    instrumented, collector = instrument(world)
    assert instrumented.call("main", a, b) == reference
    assert instrumented.vm.executed == plain.vm.executed

    profile_a = Profile.from_collector(collector, instrumented.program)
    rerun, collector2 = instrument(world)
    rerun.call("main", a, b)
    profile_b = Profile.from_collector(collector2, rerun.program)
    assert profile_a.to_dict() == profile_b.to_dict()

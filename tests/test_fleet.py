"""Fleet-mode tests: hash ring, router, redispatch, batch, aggregation.

Two in-process shard servers (the same :class:`_ServerThread` pattern
as test_serve) sit behind an in-process :class:`Router` on its own
loop thread; tests talk to the router — and, for the direct/routed
comparisons, straight to a shard — over real sockets with the
blocking client.  One subprocess test drives the real fleet manager
(``python -m repro.serve --shards 2``) through a SIGKILL + supervised
restart.
"""

from __future__ import annotations

import asyncio
import collections
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import __version__
from repro.serve.cache import cache_key
from repro.serve.client import ServeClient, backoff_delay
from repro.serve.router import HashRing, Router, RouterConfig, ShardAddr
from repro.serve.server import CompileServer, ServerConfig

SRC = "fn main(a: i64) -> i64 { a * a + 1 }"


# ---------------------------------------------------------------------------
# the consistent-hash ring
# ---------------------------------------------------------------------------


def _keys(n: int) -> list[str]:
    return [cache_key({"source": f"fn main() -> i64 {{ {i} }}",
                       "opt": "static", "options": {}})
            for i in range(n)]


def test_ring_is_deterministic():
    a, b = HashRing(), HashRing()
    for name in ("s0", "s1", "s2", "s3"):
        a.add(name)
        b.add(name)
    keys = _keys(200)
    assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]
    # Insertion order must not matter either.
    c = HashRing()
    for name in ("s3", "s1", "s0", "s2"):
        c.add(name)
    assert [a.lookup(k) for k in keys] == [c.lookup(k) for k in keys]


def test_ring_balance():
    ring = HashRing()
    for index in range(4):
        ring.add(f"s{index}")
    counts = collections.Counter(ring.lookup(k) for k in _keys(2000))
    assert set(counts) == {"s0", "s1", "s2", "s3"}
    # sha256 points x 96 replicas: every shard within [10%, 45%].
    for shard, count in counts.items():
        assert 200 <= count <= 900, (shard, count)


def test_ring_minimal_movement():
    """Removing a shard moves only its own keys; re-adding restores."""
    ring = HashRing()
    for index in range(4):
        ring.add(f"s{index}")
    keys = _keys(1000)
    before = {k: ring.lookup(k) for k in keys}
    ring.remove("s2")
    after = {k: ring.lookup(k) for k in keys}
    for key in keys:
        if before[key] != "s2":
            assert after[key] == before[key], "a surviving key moved"
        else:
            assert after[key] != "s2"
    ring.add("s2")
    assert {k: ring.lookup(k) for k in keys} == before


def test_ring_empty_and_single():
    ring = HashRing()
    assert ring.lookup("anything") is None
    ring.add("only")
    assert all(ring.lookup(k) == "only" for k in _keys(50))
    ring.remove("only")
    assert ring.lookup("anything") is None


def test_backoff_delay_bounded():
    import random
    rng = random.Random(7)
    for attempt in range(10):
        delay = backoff_delay(attempt, base=0.05, cap=2.0, rng=rng)
        assert 0 < delay < 3.0
    # Grows with attempt (modulo jitter): compare medians.
    early = sorted(backoff_delay(0, rng=rng) for _ in range(50))[25]
    late = sorted(backoff_delay(6, rng=rng) for _ in range(50))[25]
    assert late > early


# ---------------------------------------------------------------------------
# in-process fleet: two shard servers + a router
# ---------------------------------------------------------------------------


class _ServerThread:
    def __init__(self, tmp_path, name: str):
        self.loop = asyncio.new_event_loop()
        self.server = CompileServer(ServerConfig(
            port=0, workers=1, shard_name=name,
            cache_dir=str(tmp_path / "cache"),       # shared store
            crash_dir=str(tmp_path / "crashes" / name),
            max_pending=8, request_timeout=60.0))
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(timeout=30.0), "shard failed to start"
        self.port = self.server.port

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop).result(timeout=30.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)


class _RouterThread:
    def __init__(self, shards: list[tuple[str, int]]):
        self.loop = asyncio.new_event_loop()
        # Huge health interval: membership changes in these tests come
        # from requests hitting dead shards (the redispatch path) and
        # from explicit add_shard calls, never from the prober.
        self.router = Router(RouterConfig(
            port=0, health_interval=3600.0,
            shards=[ShardAddr(name, "127.0.0.1", port)
                    for name, port in shards]))
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.router.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(timeout=30.0), "router failed to start"
        self.port = self.router.port

    def add_shard(self, name: str, port: int):
        self.loop.call_soon_threadsafe(
            self.router.add_shard, name, "127.0.0.1", port)

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.router.stop(), self.loop).result(timeout=30.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)


class _Fleet:
    def __init__(self, tmp_path):
        self.tmp_path = tmp_path
        self.shards = {name: _ServerThread(tmp_path, name)
                       for name in ("shard-a", "shard-b")}
        self.router = _RouterThread(
            [(name, shard.port) for name, shard in self.shards.items()])

    def client(self, **kw) -> ServeClient:
        return ServeClient(port=self.router.port, timeout=60.0, **kw)

    def shard_client(self, name: str) -> ServeClient:
        return ServeClient(port=self.shards[name].port, timeout=60.0)

    def stop(self):
        self.router.stop()
        for shard in self.shards.values():
            shard.stop()


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    f = _Fleet(tmp_path_factory.mktemp("fleet"))
    yield f
    f.stop()


def test_router_ping_identity(fleet):
    with fleet.client() as client:
        ping = client.ping()
        assert ping["pong"] and ping["role"] == "router"
        assert ping["version"] == __version__
        assert ping["shards_live"] == 2
    # Shards tell themselves apart (satellite: version/pid/shard).
    pids = {}
    for name in fleet.shards:
        with fleet.shard_client(name) as client:
            ping = client.ping()
            assert ping["shard"] == name
            assert ping["version"] == __version__
            assert isinstance(ping["pid"], int)
            pids[name] = ping["pid"]
    assert len(set(pids.values())) == 1  # in-process shards share a pid


def test_routed_compile_key_affinity(fleet):
    """Identical requests land on one shard; repeats hit its memory."""
    with fleet.client() as client:
        cold = client.compile(SRC, opt="static", request_id="rc1")
        assert cold["ok"] and cold["cached"] is False
        assert cold["id"] == "rc1"
        warm = client.compile(SRC, opt="static")
        assert warm["ok"] and warm["cached"] == "memory"
        assert warm["artifacts"] == cold["artifacts"]
    # Exactly one shard compiled it (fleet-wide single-flight basis).
    compiles = [fleet.shards[name].server.metrics.counters.get(
        "compile_requests", 0) for name in fleet.shards]
    assert sum(1 for count in compiles if count > 0) >= 1
    key = cold["key"]
    owner = fleet.router.router.ring.lookup(key)
    assert owner in fleet.shards


def test_routed_artifacts_match_direct(fleet):
    """Routed bytes == direct shard bytes == in-process compile."""
    from repro.serve.worker import compile_request

    source = SRC + " // routed-identity"
    request = {"op": "compile", "source": source, "opt": "static"}
    with fleet.client() as client:
        routed = client.request(dict(request))
    assert routed["ok"]
    direct = compile_request(dict(request))
    for artifact in ("ir", "c", "bytecode"):
        assert routed["artifacts"][artifact] == direct[artifact]


def test_routed_run_request(fleet):
    with fleet.client() as client:
        reply = client.run(SRC, [[4]])
        assert reply["ok"], reply
        assert reply["results"][0]["value"] == 17
        assert reply["tier"] in ("interp", "vm", "native")


def test_bad_request_direct_and_routed(fleet):
    """Unknown OptimizeOptions field: structured bad-request on both
    paths, never a connection drop (satellite 4)."""
    checks = [
        lambda c: c.compile(SRC, options={"warp_factor": 9}),
        lambda c: c.run(SRC, [[1]], options={"warp_factor": 9}),
    ]
    for make in checks:
        for client_factory in (fleet.client,
                               lambda: fleet.shard_client("shard-a")):
            with client_factory() as client:
                reply = make(client)
                assert reply["ok"] is False
                assert reply["error"]["code"] == "bad-request"
                assert "warp_factor" in reply["error"]["message"]
                # Connection survived the error.
                assert client.ping()["ok"]


def test_router_rejects_malformed_and_unknown(fleet):
    with fleet.client() as client:
        client.connect()
        client._sock.sendall(b"{nope\n")
        reply = json.loads(client._read_line())
        assert reply["error"]["code"] == "malformed-json"
        assert client.request({"op": "warp"})["error"]["code"] == \
            "bad-request"


def test_batch_streams_and_summarizes(fleet):
    requests = [
        {"op": "ping"},
        {"op": "compile", "source": SRC + " // batch-0"},
        {"op": "compile", "source": SRC + " // batch-1", "id": "named"},
        {"op": "compile", "source": "fn broken(", "id": "bad"},
        {"op": "nope"},
    ]
    with fleet.client() as client:
        replies, summary = client.batch(requests, request_id="b7")
    assert summary["batch_complete"] and summary["batch"] == "b7"
    assert summary["replies"] == 5 and summary["failed"] == 2
    assert replies[0]["pong"]
    assert replies[1]["ok"] and replies["named"]["ok"]
    assert replies["bad"]["error"]["code"] == "compile-error"
    assert replies[4]["error"]["code"] == "bad-request"
    assert all(r.get("batch") == "b7" for r in replies.values())


def test_batch_does_not_nest(fleet):
    with fleet.client() as client:
        replies, summary = client.batch(
            [{"op": "batch", "requests": [{"op": "ping"}]}])
    # The envelope itself is rejected before any sub-request runs.
    assert not summary
    assert len(replies) == 1
    (reply,) = replies.values()
    assert reply["error"]["code"] == "bad-request"
    assert "nest" in reply["error"]["message"]


def test_batch_against_single_daemon(fleet):
    """The batch op is not router-only: shards speak it too."""
    with fleet.shard_client("shard-b") as client:
        replies, summary = client.batch(
            [{"op": "ping"}, {"op": "compile", "source": SRC}])
    assert summary["replies"] == 2 and summary["failed"] == 0
    assert replies[0]["pong"] and replies[1]["ok"]


def test_fleet_stats_aggregate(fleet):
    with fleet.client() as client:
        stats = client.stats()
    assert stats["ok"] and stats["role"] == "router"
    assert stats["router"]["shards_live"] == 2
    assert set(stats["shards"]) == set(fleet.shards)
    fleet_view = stats["fleet"]
    assert fleet_view["shards_reporting"] == 2
    assert fleet_view["workers"] == 2  # 1 worker x 2 shards
    total = sum(s["counters"].get("requests_total", 0)
                for s in stats["shards"].values() if s.get("ok"))
    assert fleet_view["counters"]["requests_total"] == total
    assert "hit_rate" in fleet_view["cache"]


def test_dead_shard_redispatch_and_revival(fleet):
    """Killing a shard yields zero failed requests; the survivor takes
    its keys; re-adding restores two-shard routing."""
    victim_name = "shard-b"
    fleet.shards[victim_name].stop()
    with fleet.client() as client:
        failures = []
        for index in range(12):
            reply = client.compile(
                f"fn main(a: i64) -> i64 {{ a + {index} }} // redispatch")
            if not reply.get("ok"):
                failures.append(reply)
        assert not failures, failures
        stats = client.stats()
    assert stats["router"]["shards_live"] == 1
    counters = stats["router"]["counters"]
    assert counters.get("redispatches", 0) >= 1
    assert counters.get("shard_down_events", 0) >= 1

    # Revive: a fresh shard process under the same name, new port.
    replacement = _ServerThread(fleet.tmp_path, victim_name)
    fleet.shards[victim_name] = replacement
    fleet.router.add_shard(victim_name, replacement.port)
    with fleet.client() as client:
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if client.ping()["shards_live"] == 2:
                break
            time.sleep(0.1)
        ping = client.ping()
        assert ping["shards_live"] == 2
        reply = client.compile(SRC + " // after-revival")
        assert reply["ok"]


# ---------------------------------------------------------------------------
# the real fleet manager (subprocess): SIGKILL -> supervised restart
# ---------------------------------------------------------------------------


def test_fleet_manager_restart_and_drain(tmp_path):
    port_file = tmp_path / "router.port"
    fleet_proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--shards", "2",
         "--port", "0", "--port-file", str(port_file),
         "--workers", "1", "--no-native",
         "--cache-dir", str(tmp_path / "cache"),
         "--crash-dir", str(tmp_path / "crashes")],
        env={**os.environ,
             "PYTHONPATH": os.environ.get("PYTHONPATH", "")})
    try:
        deadline = time.monotonic() + 120.0
        while not port_file.exists():
            assert fleet_proc.poll() is None, "fleet died during startup"
            assert time.monotonic() < deadline, "no router port file"
            time.sleep(0.1)
        port = int(port_file.read_text())
        client = ServeClient(port=port, timeout=120.0)
        assert client.ping()["shards_live"] == 2

        stats = client.stats()
        procs = stats["fleet"]["shard_procs"]
        victim_pid = procs["shard-0"]["pid"]
        os.kill(victim_pid, signal.SIGKILL)

        # Zero failures while the key space rebalances.
        for index in range(8):
            reply = client.compile(
                f"fn main(a: i64) -> i64 {{ a * {index + 2} }} // mgr")
            assert reply["ok"], reply

        # Supervisor restarts the shard; stats reflect it.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            stats = client.stats()
            if stats["fleet"].get("restarts", 0) >= 1 and \
                    stats["router"]["shards_live"] == 2:
                break
            time.sleep(0.5)
        assert stats["fleet"]["restarts"] >= 1
        assert stats["router"]["shards_live"] == 2
        new_pid = stats["fleet"]["shard_procs"]["shard-0"]["pid"]
        assert new_pid != victim_pid
        client.close()
    finally:
        fleet_proc.send_signal(signal.SIGTERM)
        try:
            assert fleet_proc.wait(timeout=60.0) == 0
        except subprocess.TimeoutExpired:
            fleet_proc.kill()
            raise


# ---------------------------------------------------------------------------
# disk-cache eviction (satellite: --cache-max-bytes)
# ---------------------------------------------------------------------------


def test_cache_gc_mtime_lru(tmp_path):
    from repro.serve.cache import ArtifactCache

    cache = ArtifactCache(tmp_path / "store", memory_entries=4,
                          max_bytes=None)
    payload = {"blob": "x" * 2000}
    for index in range(10):
        cache.put(f"k{index:02d}", dict(payload, n=index))
    # Backdate the first half so they are the LRU victims.
    old = time.time() - 3600
    for index in range(5):
        path = cache._object_path(f"k{index:02d}")
        os.utime(path, (old, old))
    # Touch k00 via a hit: it must survive the sweep.
    cache._memory.clear()
    assert cache.get("k00") is not None
    usage = cache.disk_usage()
    swept = cache.gc(max_bytes=usage - 1)  # force an over-budget sweep
    assert swept["evicted"] >= 1
    assert cache.evictions == swept["evicted"]
    assert cache.stats()["evictions"] >= 1
    # The touched entry survived; some backdated sibling did not.
    assert cache._object_path("k00").exists()
    assert not all(cache._object_path(f"k{i:02d}").exists()
                   for i in range(1, 5))
    # A miss on an evicted key is a miss, not an error.
    cache._memory.clear()
    victims = [f"k{i:02d}" for i in range(1, 5)
               if not cache._object_path(f"k{i:02d}").exists()]
    assert cache.get(victims[0]) is None


def test_cache_gc_triggered_by_puts(tmp_path):
    from repro.serve.cache import ArtifactCache

    cache = ArtifactCache(tmp_path / "store", memory_entries=4,
                          max_bytes=4000)
    for index in range(40):
        cache.put(f"key-{index:03d}", {"blob": "y" * 1000, "n": index})
    assert cache.gc_sweeps >= 1
    assert cache.evictions > 0
    # Usage may overshoot between periodic sweeps; an explicit sweep
    # brings it under the low watermark.
    cache.gc()
    assert cache.disk_usage() <= 4000 * 0.8


def test_client_retries_overloaded(fleet, monkeypatch):
    """Bounded backoff+jitter on overloaded replies (satellite 1)."""
    shard = fleet.shards["shard-a"].server
    original = shard.config.max_pending
    # Force every compile into the shed path on both shards.
    for server_thread in fleet.shards.values():
        server_thread.server.config.max_pending = 0
    sleeps = []
    monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
    try:
        with fleet.client(retry_attempts=3, retry_base=0.01) as client:
            reply = client.compile(SRC + " // retry-test")
        assert reply["ok"] is False
        assert reply["error"]["code"] == "overloaded"
        assert client.retries == 3
        assert len(sleeps) == 3
        assert sleeps == sorted(sleeps) or max(sleeps) <= 0.1
        # Opt-out: no retries, first overloaded reply surfaces.
        with fleet.client(retry_overloaded=False) as client:
            reply = client.compile(SRC + " // retry-test")
            assert reply["error"]["code"] == "overloaded"
            assert client.retries == 0
    finally:
        for server_thread in fleet.shards.values():
            server_thread.server.config.max_pending = original

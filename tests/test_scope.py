"""Unit tests for implicit scope recovery — the paper's core structure."""

import pytest

from repro.core import types as ct
from repro.core.scope import Scope, top_level_continuations
from repro.core.world import World

from .helpers import FN_I64, RET_I64, make_add_const, make_fib, make_identity


@pytest.fixture()
def world():
    return World("test")


class TestScopeMembership:
    def test_entry_and_params_always_in_scope(self, world):
        f = make_identity(world)
        scope = Scope(f)
        assert f in scope
        for p in f.params:
            assert p in scope

    def test_param_users_in_scope(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        doubled = world.add(x, x)
        world.jump(f, ret, (mem, doubled))
        scope = Scope(f)
        assert doubled in scope

    def test_constants_shared_not_in_scope(self, world):
        f = make_add_const(world, 5)
        scope = Scope(f)
        five = world.literal(ct.I64, 5)
        assert five not in scope

    def test_param_free_ops_not_in_scope(self, world):
        # g() = ret-independent computation: stays outside f's scope
        f = world.continuation(FN_I64, "f")
        g = world.continuation(FN_I64, "g")
        shared = world.add(world.literal(ct.I64, 1), g.params[1])
        world.jump(g, g.params[2], (g.params[0], shared))
        world.jump(f, g, tuple(f.params))
        scope_f = Scope(f)
        assert shared not in scope_f
        assert g not in scope_f
        assert shared in Scope(g)

    def test_inner_blocks_in_scope(self, world):
        fib = make_fib(world)
        scope = Scope(fib)
        names = {c.name for c in scope.continuations()}
        assert names == {"fib", "then", "else", "k1", "k2"}

    def test_callers_not_pulled_in(self, world):
        callee = make_identity(world, "callee")
        caller = world.continuation(FN_I64, "caller")
        world.jump(caller, callee, tuple(caller.params))
        assert caller not in Scope(callee)

    def test_mutually_recursive_top_level(self, world):
        # even/odd: calling each other must not merge their scopes
        even = world.continuation(FN_I64, "even")
        odd = world.continuation(FN_I64, "odd")
        world.jump(even, odd, tuple(even.params))
        world.jump(odd, even, tuple(odd.params))
        assert odd not in Scope(even)
        assert even not in Scope(odd)

    def test_entry_listed_first(self, world):
        fib = make_fib(world)
        assert Scope(fib).continuations()[0] is fib


class TestFreeDefs:
    def test_closed_function_has_no_free_defs(self, world):
        f = make_add_const(world, 3)
        assert Scope(f).free_defs() == []
        assert not Scope(f).has_free_params()

    def test_nested_continuation_sees_outer_param(self, world):
        outer = world.continuation(FN_I64, "outer")
        mem, x, ret = outer.params
        inner = world.continuation(RET_I64, "inner")
        # inner uses outer's x: inner is in outer's scope
        world.jump(inner, ret, (inner.params[0], world.add(inner.params[1], x)))
        world.jump(outer, inner, (mem, x))
        assert inner in Scope(outer)
        free = Scope(inner).free_params()
        assert x in free and ret in free

    def test_free_params_transitive_through_closure(self, world):
        outer = world.continuation(FN_I64, "outer")
        mem, x, ret = outer.params
        # leaf captures x; mid only calls leaf
        leaf = world.continuation(RET_I64, "leaf")
        world.jump(leaf, ret, (leaf.params[0], world.add(leaf.params[1], x)))
        mid = world.continuation(RET_I64, "mid")
        world.jump(mid, leaf, tuple(mid.params))
        free = Scope(mid).free_params()
        assert x in free

    def test_literals_never_free(self, world):
        f = make_add_const(world, 9)
        assert all(d.name != "9" for d in Scope(f).free_defs())


class TestTopLevel:
    def test_top_level_excludes_nested(self, world):
        fib = make_fib(world)
        world.make_external(fib)
        tops = top_level_continuations(world)
        assert fib in tops
        names = {c.name for c in tops}
        assert "k1" not in names and "then" not in names

    def test_mutual_recursion_both_top_level(self, world):
        even = world.continuation(FN_I64, "even")
        odd = world.continuation(FN_I64, "odd")
        world.jump(even, odd, tuple(even.params))
        world.jump(odd, even, tuple(odd.params))
        tops = top_level_continuations(world)
        assert even in tops and odd in tops

    def test_intrinsics_not_top_level(self, world):
        world.branch()
        assert all(not c.is_intrinsic() for c in top_level_continuations(world))


class TestScopeAfterMangling:
    def test_specialized_scope_disjoint_from_original(self, world):
        from repro.transform.mangle import drop

        fib = make_fib(world)
        spec = drop(Scope(fib), {fib.params[1]: world.literal(ct.I64, 7)})
        orig = set(Scope(fib).continuations())
        new = set(Scope(spec).continuations())
        # The copy references fib (recursive calls with changed args go
        # to the generic version), but shares none of fib's blocks as
        # its own members except fib itself.
        assert spec not in orig
        assert not (new - {fib}) & orig

"""Tests for the IR verifier, the CFF checker, and the printers."""

import pytest

from repro import compile_source
from repro.core import types as ct
from repro.core.printer import def_ref, print_scope, print_world, to_dot
from repro.core.scope import Scope
from repro.core.verify import VerifyError, cff_violations, is_cff, verify
from repro.core.world import World

from .helpers import FN_I64, RET_I64, make_add_const, make_fib


@pytest.fixture()
def world():
    return World("test")


class TestVerify:
    def test_wellformed_world_passes(self, world):
        make_fib(world)
        verify(world)

    def test_wrong_arg_type_caught(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        bad = world.literal(ct.F64, 1.5)
        # bypass the smart factory's checks via the raw jump
        f._set_ops((ret, mem, bad))
        with pytest.raises(VerifyError):
            verify(world)

    def test_arity_mismatch_caught(self, world):
        f = world.continuation(FN_I64, "f")
        mem, x, ret = f.params
        f._set_ops((ret, mem))
        with pytest.raises(VerifyError):
            verify(world)

    def test_whole_suite_verifies(self):
        from repro.programs import ALL_PROGRAMS

        for program in ALL_PROGRAMS[:6]:
            verify(compile_source(program.source))


class TestCFF:
    def test_first_order_program_is_cff(self, world):
        f = make_add_const(world, 1)
        world.make_external(f)
        assert is_cff(world)

    def test_higher_order_param_violates(self, world):
        hof_t = ct.fn_type((ct.MEM, FN_I64, RET_I64))
        hof = world.continuation(hof_t, "hof")
        world.make_external(hof)
        mem, f, ret = hof.params
        world.jump(hof, f, (mem, world.literal(ct.I64, 1), ret))
        violations = cff_violations(world)
        assert violations
        assert any("order-3" in v or "callee" in v for v in violations)

    def test_inner_closure_violates(self, world):
        outer = world.continuation(FN_I64, "outer")
        world.make_external(outer)
        mem, x, ret = outer.params
        inner = world.continuation(RET_I64, "inner")
        world.jump(inner, ret, (inner.params[0],
                                world.add(inner.params[1], x)))
        # pass inner (a closure over x) to another function: escaping
        callee = world.continuation(ct.fn_type((ct.MEM, RET_I64, RET_I64)),
                                    "callee")
        world.jump(callee, callee.params[1],
                   (callee.params[0], world.literal(ct.I64, 0)))
        world.jump(outer, callee, (mem, inner, ret))
        assert not is_cff(world)

    def test_suite_reaches_cff_after_pipeline(self):
        from repro.programs import by_tag

        for program in by_tag("higher-order"):
            world = compile_source(program.source)
            assert is_cff(world), program.name


class TestPrinter:
    def test_def_ref_forms(self, world):
        assert def_ref(world.literal(ct.I64, 3)) == "i64:3"
        assert def_ref(world.literal(ct.I8, -1)) == "i8:-1"
        assert def_ref(world.bottom(ct.BOOL)) == "bot[bool]"
        f = world.continuation(FN_I64, "f")
        assert def_ref(f).startswith("f_")

    def test_print_scope_contains_structure(self, world):
        fib = make_fib(world)
        text = print_scope(Scope(fib))
        assert "fn fib_" in text
        assert "jump branch" in text
        assert "cmp.lt" in text

    def test_print_world_lists_externals(self, world):
        fib = make_fib(world)
        world.make_external(fib)
        text = print_world(world)
        assert "extern fn fib" in text

    def test_dot_export(self, world):
        fib = make_fib(world)
        dot = to_dot(Scope(fib))
        assert dot.startswith("digraph")
        assert "->" in dot and dot.rstrip().endswith("}")

    def test_roundtrip_stability(self, world):
        fib = make_fib(world)
        once = print_scope(Scope(fib))
        twice = print_scope(Scope(fib))
        assert once == twice

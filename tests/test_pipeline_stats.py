"""Pipeline behaviour: fixed point, stats bookkeeping, options threading."""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.core.world import World
from repro.frontend.emit import emit_module
from repro.frontend.parser import parse
from repro.frontend.sema import analyze
from repro.programs.suite import ALL_PROGRAMS
from repro.transform.pipeline import OptimizeOptions, optimize

STATIC_PHASES = {"partial_eval", "closure_elim", "inline", "lambda_drop",
                 "mem_opt", "cleanup"}


def _fresh_world(source: str) -> World:
    world = World("module")
    emit_module(analyze(parse(source)), world)
    return world


@pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
def test_pipeline_reaches_fixed_point_early(program):
    """The suite converges well before the round bound."""
    world = _fresh_world(program.source)
    stats = optimize(world, options=OptimizeOptions(max_rounds=12))
    assert stats.rounds < 12


@pytest.mark.parametrize("program", ALL_PROGRAMS[:4], ids=lambda p: p.name)
def test_stats_details_record_every_phase(program):
    world = _fresh_world(program.source)
    stats = optimize(world)
    phases = stats.phases()
    # Every static phase shows up, interleaved with cleanups.
    assert STATIC_PHASES <= set(phases)
    # One leading cleanup + 10 records per round (5 passes + 5 cleanups).
    assert len(phases) == 1 + 10 * stats.rounds
    # Each record carries that pass's counters, as a plain dict.
    for phase, detail in stats.details:
        assert isinstance(detail, dict)
        if phase == "inline":
            assert "inlined" in detail


def test_max_rounds_keyword_overrides_options():
    world = _fresh_world(ALL_PROGRAMS[0].source)
    stats = optimize(world, options=OptimizeOptions(max_rounds=12),
                     max_rounds=1)
    assert stats.rounds == 1


def test_inline_threshold_is_threaded():
    """size_threshold=0 still inlines once-called functions, nothing else."""
    source = """
fn helper(x: i64) -> i64 { x + 1 }
fn twice(x: i64) -> i64 { helper(x) + helper(x + 1) }
fn main(a: i64) -> i64 { twice(a) }
"""
    permissive = _fresh_world(source)
    stats_permissive = optimize(permissive)

    strict = _fresh_world(source)
    stats_strict = optimize(
        strict, options=OptimizeOptions(inline_size_threshold=0))

    def inlined(stats):
        return sum(d.get("inlined", 0) for p, d in stats.details
                   if p == "inline")

    assert inlined(stats_permissive) >= inlined(stats_strict)


def test_inline_budget_is_threaded():
    world = _fresh_world(ALL_PROGRAMS[0].source)
    stats = optimize(world, options=OptimizeOptions(inline_budget=7))
    budgets = [d["budget_left"] for p, d in stats.details if p == "inline"]
    assert budgets and all(b <= 7 for b in budgets)


def test_pgo_phase_recorded_when_profile_supplied():
    from repro.profile import collect_profile

    program = ALL_PROGRAMS[0]
    world = _fresh_world(program.source)
    optimize(world)
    profile = collect_profile(
        world, lambda c: c.call(program.entry, *program.test_args))
    stats = optimize(world, profile=profile)
    phases = stats.phases()
    assert "pgo_loops" in phases and "pgo_inline" in phases
    # PGO phases come before any post-PGO static rounds.
    assert phases.index("pgo_loops") < phases.index("pgo_inline")


def test_pipeline_preserves_semantics_with_options():
    from repro.backend.codegen import compile_world

    program = ALL_PROGRAMS[0]
    world = _fresh_world(program.source)
    optimize(world, options=OptimizeOptions(inline_size_threshold=5,
                                            max_rounds=3))
    compiled = compile_world(world)
    assert compiled.call(program.entry, *program.test_args) \
        == program.test_expect

"""Unit tests for the bytecode VM, Thorin codegen, and the C emitter."""

import pytest

from repro import compile_source
from repro.backend import bytecode as bc
from repro.backend.c_emitter import emit_c
from repro.backend.codegen import CodegenError, compile_world
from repro.core import types as ct


class TestVMPrimitives:
    def test_word_sizes(self):
        assert bc.word_size(ct.I64) == 1
        assert bc.word_size(ct.tuple_type((ct.I64, ct.F64))) == 2
        assert bc.word_size(ct.definite_array_type(ct.I32, 5)) == 5
        nested = ct.tuple_type((ct.definite_array_type(ct.I8, 3), ct.BOOL))
        assert bc.word_size(nested) == 4

    def test_field_offsets(self):
        t = ct.tuple_type((ct.definite_array_type(ct.I8, 3), ct.BOOL, ct.I64))
        assert bc.field_offset(t, 0) == 0
        assert bc.field_offset(t, 1) == 3
        assert bc.field_offset(t, 2) == 4
        arr = ct.definite_array_type(ct.tuple_type((ct.I64, ct.I64)), 4)
        assert bc.field_offset(arr, 2) == 4

    def test_manual_program(self):
        program = bc.VMProgram()
        fn = bc.VMFunction("add3", 1, 1)
        reg = fn.new_reg()
        fn.emit(bc.OP_CONST, reg, 3)
        out = fn.new_reg()
        fn.emit(bc.OP_ARITH, out, bc.arith_fn(
            __import__("repro.core.primops", fromlist=["ArithKind"]).ArithKind.ADD,
            ct.I64), 0, reg)
        fn.emit(bc.OP_RET, (out,))
        program.add(fn)
        assert program.call("add3", 39) == 42

    def test_trap_instruction(self):
        program = bc.VMProgram()
        fn = bc.VMFunction("boom", 0, 0)
        fn.emit(bc.OP_TRAP, "kaboom")
        program.add(fn)
        with pytest.raises(bc.VMError, match="kaboom"):
            program.call("boom")

    def test_heap_limit(self):
        vm = bc.VM(heap_limit=100)
        with pytest.raises(bc.VMError):
            vm.alloc_words(1000)

    def test_disassembler(self):
        world = compile_source("fn main(a: i64) -> i64 { a + 1 }")
        compiled = compile_world(world)
        text = compiled.program.disassemble()
        assert "fn main/1" in text
        assert "ret" in text


class _CountingProfile:
    """Minimal duck-typed collector for the instrumented loop."""

    def __init__(self):
        from collections import defaultdict

        self.entries = defaultdict(int)
        self.calls = defaultdict(int)
        self.edges = defaultdict(int)


FUSED_NAMES = ("arith.br", "arith.arith", "lea.load", "lea.store",
               "lea.const.load", "lea.const.store", "mov.jmp")


class TestSuperinstructionFusion:
    LOOP = """
fn main(n: i64) -> i64 {
    let arr = new_buf_i64(64);
    let mut i = 0;
    while i < n {
        arr[i % 64] = arr[i % 64] + i;
        i += 1;
    }
    let mut acc = 0;
    for k in 0..64 { acc += arr[k]; }
    acc
}
"""

    def test_fusion_fires_on_hot_loops(self):
        world = compile_source(self.LOOP)
        program = compile_world(world).program
        fused = "\n\n".join(f.disassemble(fused=True)
                            for f in program.functions)
        assert any(name in fused for name in FUSED_NAMES)
        # The source stream — what serve artifacts, PGO site labels and
        # the profiled loop consume — never contains superinstructions.
        assert not any(name in program.disassemble()
                       for name in FUSED_NAMES)

    def test_fused_run_matches_unfused_run_exactly(self):
        # The profiled loop executes the unfused source stream; both
        # must agree on the result, the output, and the retired
        # instruction count (superinstructions retire two).
        world = compile_source(self.LOOP)
        plain = compile_world(world)
        value = plain.call("main", 1000)
        profiled = compile_world(world, profile=_CountingProfile())
        assert profiled.call("main", 1000) == value
        assert profiled.vm.executed == plain.vm.executed
        assert plain.vm.executed > 0

    def test_jump_into_the_middle_of_a_fused_pair(self):
        # Fusion leaves the second instruction of a pair in place, so a
        # branch into it must still work: pc 3/4 fuse into arith.arith
        # at 3, while the false edge of the br enters at 4 directly.
        from repro.core.primops import ArithKind

        add = bc.arith_fn(ArithKind.ADD, ct.I64)
        program = bc.VMProgram()
        fn = bc.VMFunction("f", 1, 1)
        r1, r2, r3, r4 = (fn.new_reg() for _ in range(4))
        fn.emit(bc.OP_CONST, r1, 10)
        fn.emit(bc.OP_CONST, r2, 100)
        fn.emit(bc.OP_BR, 0, 3, 4)
        fn.emit(bc.OP_ARITH, r3, add, r1, r1)
        fn.emit(bc.OP_ARITH, r4, add, r2, r2)
        fn.emit(bc.OP_RET, (r4,))
        program.add(fn)
        listing = fn.disassemble(fused=True)
        assert "arith.arith" in listing

        vm_taken = bc.VM(program)
        assert vm_taken.call(program, "f", 1) == 200
        assert vm_taken.executed == 6  # the fused pair retires two
        vm_skipped = bc.VM(program)
        assert vm_skipped.call(program, "f", 0) == 200
        assert vm_skipped.executed == 5

    def test_step_limit_trips_identically(self):
        # For any budget, the fused and unfused loops must agree on
        # whether the step limit trips (the limit is only checked at
        # control-flow opcodes; fused handlers keep those checks).
        world = compile_source(self.LOOP)
        budget = compile_world(world)
        budget.call("main", 200)
        steps = budget.vm.executed
        for limit in (steps, steps // 2, steps // 7):
            outcomes = []
            for profile in (None, _CountingProfile()):
                vm_image = compile_world(world, profile=profile,
                                         max_steps=limit)
                try:
                    vm_image.call("main", 200)
                    outcomes.append(("ok", vm_image.vm.executed))
                except bc.VMLimitError:
                    outcomes.append(("trap", vm_image.vm.executed))
            assert outcomes[0] == outcomes[1]


class TestCodegen:
    def _run(self, source, *args, entry="main"):
        world = compile_source(source)
        return compile_world(world).call(entry, *args)

    def test_signed_conversion_at_boundary(self):
        assert self._run("fn main(a: i64) -> i64 { 0 - a }", 7) == -7

    def test_parallel_move_swap(self):
        # two loop-carried variables swapped every iteration: the
        # classic phi-cycle needing a scratch register
        src = """
fn main(n: i64) -> i64 {
    let mut a = 1;
    let mut b = 2;
    for i in 0..n {
        let t = a;
        a = b;
        b = t;
    }
    a * 10 + b
}
"""
        assert self._run(src, 0) == 12
        assert self._run(src, 1) == 21
        assert self._run(src, 5) == 21

    def test_tail_recursion_constant_stack(self):
        # deep tail recursion must not exhaust anything
        src = """
fn count(n: i64, acc: i64) -> i64 {
    if n == 0 { acc } else { count(n - 1, acc + 1) }
}
fn main() -> i64 { count(200000, 0) }
"""
        assert self._run(src) == 200000

    def test_conditional_return(self):
        src = """
fn f(buf: &[i64], n: i64) -> () {
    if n <= 0 { return; }
    buf[0] = n;
}
fn main(n: i64) -> i64 {
    let b = new_buf_i64(1);
    f(b, n);
    b[0]
}
"""
        assert self._run(src, 5) == 5
        assert self._run(src, -3) == 0

    def test_non_cff_rejected(self):
        # returned closure with a *dynamic* environment value cannot be
        # eliminated if we skip the pipeline: codegen must refuse it.
        world = compile_source("""
fn make(n: i64) -> fn(i64) -> i64 { |x: i64| x + n }
fn main(a: i64) -> i64 { make(a)(1) }
""", optimize=False)
        with pytest.raises(CodegenError):
            compile_world(world)

    def test_match_lowering(self):
        # exercised via the world API: build a match jump directly
        from repro.core.world import World
        from tests.helpers import FN_I64

        world = World()
        f = world.continuation(FN_I64, "main")
        world.make_external(f)
        mem, x, ret = f.params
        default = world.basic_block((ct.MEM,), "default")
        one = world.basic_block((ct.MEM,), "one")
        two = world.basic_block((ct.MEM,), "two")
        match = world.match(ct.I64)
        arm1 = world.tuple_((world.literal(ct.I64, 1), one))
        arm2 = world.tuple_((world.literal(ct.I64, 2), two))
        f.jump(match, (mem, x, default, arm1, arm2))
        world.jump(default, ret, (default.params[0], world.literal(ct.I64, 0)))
        world.jump(one, ret, (one.params[0], world.literal(ct.I64, 100)))
        world.jump(two, ret, (two.params[0], world.literal(ct.I64, 200)))
        compiled = compile_world(world)
        assert compiled.call("main", 1) == 100
        assert compiled.call("main", 2) == 200
        assert compiled.call("main", 9) == 0

    def test_instruction_counter(self):
        world = compile_source("fn main() -> i64 { 41 + 1 }")
        compiled = compile_world(world)
        vm = bc.VM(compiled.program)
        vm.call(compiled.program, "main")
        assert vm.executed >= 1


class TestCEmitter:
    def test_emits_whole_suite(self):
        from repro.programs import ALL_PROGRAMS

        for program in ALL_PROGRAMS[:5]:
            text = emit_c(compile_source(program.source))
            assert "#include <stdint.h>" in text

    def test_structure_of_loop(self):
        text = emit_c(compile_source("""
fn main(n: i64) -> i64 {
    let mut acc = 0;
    for i in 0..n { acc += i; }
    acc
}
"""))
        assert "int64_t main(int64_t" in text
        assert "goto" in text
        assert "return" in text

    def test_calls_and_recursion(self):
        text = emit_c(compile_source("""
fn fact(n: i64) -> i64 { if n <= 1 { 1 } else { n * fact(n - 1) } }
fn main(x: i64) -> i64 { fact(x) }
"""))
        assert "fact(" in text

    def test_print_becomes_printf(self):
        text = emit_c(compile_source(
            'fn main() -> i64 { print_i64(7); 0 }'
        ))
        assert "printf" in text

"""Unit tests for the bytecode VM, Thorin codegen, and the C emitter."""

import pytest

from repro import compile_source
from repro.backend import bytecode as bc
from repro.backend.c_emitter import emit_c
from repro.backend.codegen import CodegenError, compile_world
from repro.core import types as ct


class TestVMPrimitives:
    def test_word_sizes(self):
        assert bc.word_size(ct.I64) == 1
        assert bc.word_size(ct.tuple_type((ct.I64, ct.F64))) == 2
        assert bc.word_size(ct.definite_array_type(ct.I32, 5)) == 5
        nested = ct.tuple_type((ct.definite_array_type(ct.I8, 3), ct.BOOL))
        assert bc.word_size(nested) == 4

    def test_field_offsets(self):
        t = ct.tuple_type((ct.definite_array_type(ct.I8, 3), ct.BOOL, ct.I64))
        assert bc.field_offset(t, 0) == 0
        assert bc.field_offset(t, 1) == 3
        assert bc.field_offset(t, 2) == 4
        arr = ct.definite_array_type(ct.tuple_type((ct.I64, ct.I64)), 4)
        assert bc.field_offset(arr, 2) == 4

    def test_manual_program(self):
        program = bc.VMProgram()
        fn = bc.VMFunction("add3", 1, 1)
        reg = fn.new_reg()
        fn.emit(bc.OP_CONST, reg, 3)
        out = fn.new_reg()
        fn.emit(bc.OP_ARITH, out, bc.arith_fn(
            __import__("repro.core.primops", fromlist=["ArithKind"]).ArithKind.ADD,
            ct.I64), 0, reg)
        fn.emit(bc.OP_RET, (out,))
        program.add(fn)
        assert program.call("add3", 39) == 42

    def test_trap_instruction(self):
        program = bc.VMProgram()
        fn = bc.VMFunction("boom", 0, 0)
        fn.emit(bc.OP_TRAP, "kaboom")
        program.add(fn)
        with pytest.raises(bc.VMError, match="kaboom"):
            program.call("boom")

    def test_heap_limit(self):
        vm = bc.VM(heap_limit=100)
        with pytest.raises(bc.VMError):
            vm.alloc_words(1000)

    def test_disassembler(self):
        world = compile_source("fn main(a: i64) -> i64 { a + 1 }")
        compiled = compile_world(world)
        text = compiled.program.disassemble()
        assert "fn main/1" in text
        assert "ret" in text


class TestCodegen:
    def _run(self, source, *args, entry="main"):
        world = compile_source(source)
        return compile_world(world).call(entry, *args)

    def test_signed_conversion_at_boundary(self):
        assert self._run("fn main(a: i64) -> i64 { 0 - a }", 7) == -7

    def test_parallel_move_swap(self):
        # two loop-carried variables swapped every iteration: the
        # classic phi-cycle needing a scratch register
        src = """
fn main(n: i64) -> i64 {
    let mut a = 1;
    let mut b = 2;
    for i in 0..n {
        let t = a;
        a = b;
        b = t;
    }
    a * 10 + b
}
"""
        assert self._run(src, 0) == 12
        assert self._run(src, 1) == 21
        assert self._run(src, 5) == 21

    def test_tail_recursion_constant_stack(self):
        # deep tail recursion must not exhaust anything
        src = """
fn count(n: i64, acc: i64) -> i64 {
    if n == 0 { acc } else { count(n - 1, acc + 1) }
}
fn main() -> i64 { count(200000, 0) }
"""
        assert self._run(src) == 200000

    def test_conditional_return(self):
        src = """
fn f(buf: &[i64], n: i64) -> () {
    if n <= 0 { return; }
    buf[0] = n;
}
fn main(n: i64) -> i64 {
    let b = new_buf_i64(1);
    f(b, n);
    b[0]
}
"""
        assert self._run(src, 5) == 5
        assert self._run(src, -3) == 0

    def test_non_cff_rejected(self):
        # returned closure with a *dynamic* environment value cannot be
        # eliminated if we skip the pipeline: codegen must refuse it.
        world = compile_source("""
fn make(n: i64) -> fn(i64) -> i64 { |x: i64| x + n }
fn main(a: i64) -> i64 { make(a)(1) }
""", optimize=False)
        with pytest.raises(CodegenError):
            compile_world(world)

    def test_match_lowering(self):
        # exercised via the world API: build a match jump directly
        from repro.core.world import World
        from tests.helpers import FN_I64

        world = World()
        f = world.continuation(FN_I64, "main")
        world.make_external(f)
        mem, x, ret = f.params
        default = world.basic_block((ct.MEM,), "default")
        one = world.basic_block((ct.MEM,), "one")
        two = world.basic_block((ct.MEM,), "two")
        match = world.match(ct.I64)
        arm1 = world.tuple_((world.literal(ct.I64, 1), one))
        arm2 = world.tuple_((world.literal(ct.I64, 2), two))
        f.jump(match, (mem, x, default, arm1, arm2))
        world.jump(default, ret, (default.params[0], world.literal(ct.I64, 0)))
        world.jump(one, ret, (one.params[0], world.literal(ct.I64, 100)))
        world.jump(two, ret, (two.params[0], world.literal(ct.I64, 200)))
        compiled = compile_world(world)
        assert compiled.call("main", 1) == 100
        assert compiled.call("main", 2) == 200
        assert compiled.call("main", 9) == 0

    def test_instruction_counter(self):
        world = compile_source("fn main() -> i64 { 41 + 1 }")
        compiled = compile_world(world)
        vm = bc.VM(compiled.program)
        vm.call(compiled.program, "main")
        assert vm.executed >= 1


class TestCEmitter:
    def test_emits_whole_suite(self):
        from repro.programs import ALL_PROGRAMS

        for program in ALL_PROGRAMS[:5]:
            text = emit_c(compile_source(program.source))
            assert "#include <stdint.h>" in text

    def test_structure_of_loop(self):
        text = emit_c(compile_source("""
fn main(n: i64) -> i64 {
    let mut acc = 0;
    for i in 0..n { acc += i; }
    acc
}
"""))
        assert "int64_t main(int64_t" in text
        assert "goto" in text
        assert "return" in text

    def test_calls_and_recursion(self):
        text = emit_c(compile_source("""
fn fact(n: i64) -> i64 { if n <= 1 { 1 } else { n * fact(n - 1) } }
fn main(x: i64) -> i64 { fact(x) }
"""))
        assert "fact(" in text

    def test_print_becomes_printf(self):
        text = emit_c(compile_source(
            'fn main() -> i64 { print_i64(7); 0 }'
        ))
        assert "printf" in text

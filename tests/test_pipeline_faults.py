"""Fault-tolerant pipeline: rollback, quarantine, crash bundles."""

from __future__ import annotations

import json

import pytest

from repro.backend.interp import Interpreter
from repro.core.snapshot import Snapshot, restore_world
from repro.core.verify import verify
from repro.frontend import compile_source
from repro.fuzz.faults import run_fault_case
from repro.fuzz.inject import FaultInjector, FaultPlan, InjectedFault
from repro.programs.suite import by_name
from repro.transform.pipeline import (OptimizeOptions, PipelineCrash,
                                      optimize)

PROGRAM = by_name("compose")
STATIC_PASSES = ("partial_eval", "closure_elim", "inline", "lambda_drop",
                 "cleanup")
MODES = ("raise", "corrupt", "stall", "growth")
KIND_BY_MODE = {"raise": "exception", "corrupt": "verify",
                "stall": "deadline", "growth": "growth"}


def _world():
    return compile_source(PROGRAM.source, optimize=False)


def _injected(mode: str, target: str):
    """Optimize with one injected fault; returns (world, injector, stats)."""
    world = _world()
    injector = FaultInjector(FaultPlan(mode, target=target,
                                       stall_seconds=0.4))
    options = OptimizeOptions(
        verify_each_pass=True,
        pass_deadline=0.15 if mode == "stall" else None,
        growth_cap_factor=4.0, growth_cap_floor=64,
        crash_dir=None, pass_hook=injector)
    stats = optimize(world, options=options)
    return world, injector, stats


@pytest.mark.parametrize("target", STATIC_PASSES)
@pytest.mark.parametrize("mode", MODES)
def test_every_fault_on_every_pass_recovers(mode, target):
    """The acceptance matrix on one fast program (the full suite sweep
    runs in the fuzz fault campaign)."""
    result = run_fault_case(PROGRAM, target, mode)
    assert result.fired, result.describe()
    assert result.ok, result.describe()


@pytest.mark.parametrize("mode", MODES)
def test_incident_kind_is_classified(mode):
    _, injector, stats = _injected(mode, "inline")
    assert injector.fired
    assert stats.quarantined == ["inline"]
    assert stats.rollbacks == 1
    (incident,) = stats.incidents
    assert incident.phase == "inline"
    assert incident.kind == KIND_BY_MODE[mode]
    assert incident.as_dict()["kind"] == incident.kind


def test_quarantined_pass_is_skipped_in_later_rounds():
    _, injector, stats = _injected("raise", "partial_eval")
    assert injector.fired
    # partial_eval runs first in every round; after round 1's rollback
    # every later round must skip it.
    assert stats.skipped
    assert all(phase == "partial_eval" for phase in stats.skipped)
    # The phase log still carries one record per scheduled pass.
    assert stats.phases().count("partial_eval") == stats.rounds


def test_rolled_back_world_still_verifies_and_runs():
    world, injector, stats = _injected("corrupt", "closure_elim")
    assert injector.fired
    verify(world, full=True)
    expected = Interpreter(_world()).call(PROGRAM.entry,
                                          *PROGRAM.test_args)
    assert Interpreter(world).call(PROGRAM.entry,
                                   *PROGRAM.test_args) == expected


def test_strict_mode_propagates_the_fault():
    world = _world()
    injector = FaultInjector(FaultPlan("raise", target="inline"))
    with pytest.raises(InjectedFault):
        optimize(world, options=OptimizeOptions(strict=True,
                                                pass_hook=injector))


def test_strict_mode_takes_no_checkpoints():
    world = _world()
    stats = optimize(world, options=OptimizeOptions(strict=True))
    assert stats.checkpoints == 0
    assert stats.rollbacks == 0


def test_clean_run_records_no_incidents():
    world = _world()
    stats = optimize(world)
    assert stats.incidents == []
    assert stats.quarantined == []
    assert stats.skipped == []
    assert stats.checkpoints > 0


def test_unrecoverable_failure_writes_crash_bundle(tmp_path, monkeypatch):
    """If rollback itself dies, optimize raises PipelineCrash and leaves
    a bundle whose world.json restores to the pre-pipeline IR."""
    import repro.core.undo as undo_mod

    def broken_restore(self):
        raise RuntimeError("simulated rollback failure")

    # Phase checkpoints are undo logs on the default (incremental)
    # configuration; breaking their restore breaks recovery without
    # touching checkpoint-taking itself.
    monkeypatch.setattr(undo_mod.UndoLog, "restore", broken_restore)

    world = _world()
    injector = FaultInjector(FaultPlan("raise", target="inline"))
    crash_dir = tmp_path / "crash_reports"
    options = OptimizeOptions(pass_hook=injector, crash_dir=str(crash_dir),
                              crash_context={"origin": "unit-test"})
    with pytest.raises(PipelineCrash) as info:
        optimize(world, options=options)

    report_path = info.value.report_path
    assert report_path is not None
    monkeypatch.undo()

    report = json.loads((report_path / "report.json").read_text())
    assert report["error"]["type"] == "RuntimeError"
    assert report["context"]["origin"] == "unit-test"
    assert "pass_trace" in report

    snap = Snapshot.from_json((report_path / "world.json").read_text())
    restored = restore_world(snap)
    verify(restored, full=True)
    expected = Interpreter(_world()).call(PROGRAM.entry,
                                          *PROGRAM.test_args)
    assert Interpreter(restored).call(PROGRAM.entry,
                                      *PROGRAM.test_args) == expected


def test_crash_dir_none_disables_bundles(monkeypatch):
    import repro.core.undo as undo_mod

    def broken_restore(self):
        raise RuntimeError("simulated rollback failure")

    monkeypatch.setattr(undo_mod.UndoLog, "restore", broken_restore)
    world = _world()
    injector = FaultInjector(FaultPlan("raise", target="inline"))
    with pytest.raises(PipelineCrash) as info:
        optimize(world, options=OptimizeOptions(pass_hook=injector,
                                                crash_dir=None))
    assert info.value.report_path is None


def test_round_granularity_checkpoints_once_per_round():
    world = _world()
    stats = optimize(world, options=OptimizeOptions(
        checkpoint_granularity="round"))
    # One checkpoint for the leading cleanup + one per round, instead of
    # one per phase.
    assert stats.checkpoints == stats.rounds + 1

"""Unit tests for the reference graph interpreter."""

import pytest

from repro import compile_source
from repro.backend.interp import Interpreter, InterpError
from repro.core import types as ct
from repro.core.world import World

from .helpers import FN_I64, make_fib, make_loop_sum


def interp_main(source, *args, optimize=False):
    world = compile_source(source, optimize=optimize)
    return Interpreter(world).call("main", *args)


class TestBasics:
    def test_fib_graph(self):
        world = World()
        fib = make_fib(world)
        world.make_external(fib)
        assert Interpreter(world).call("fib", 12) == 144

    def test_loop_graph(self):
        world = World()
        f = make_loop_sum(world)
        world.make_external(f)
        assert Interpreter(world).call("sum_to", 100) == 4950

    def test_signed_results(self):
        assert interp_main("fn main(a: i64) -> i64 { 0 - a }", 5) == -5

    def test_float_results(self):
        assert interp_main("fn main() -> f64 { 1.0 / 4.0 }") == 0.25

    def test_bool_results(self):
        assert interp_main("fn main(a: i64) -> bool { a > 3 }", 5) is True

    def test_unit_function_returns_none(self):
        world = compile_source("fn main() { }", optimize=False)
        assert Interpreter(world).call("main") is None

    def test_tuple_result(self):
        got = interp_main("fn main() -> (i64, bool) { (7, true) }")
        assert got == (7, True)


class TestTraps:
    def test_division_by_zero(self):
        with pytest.raises(InterpError):
            interp_main("fn main(a: i64) -> i64 { a / 0 }", 1)

    def test_guarded_division_ok(self):
        src = "fn main(a: i64, b: i64) -> i64 { if b != 0 { a / b } else { 0 } }"
        assert interp_main(src, 10, 0) == 0
        assert interp_main(src, 10, 2) == 5

    def test_out_of_bounds_buffer(self):
        with pytest.raises(InterpError):
            interp_main("""
fn main() -> i64 {
    let b = new_buf_i64(4);
    b[10]
}
""")

    def test_step_budget(self):
        world = compile_source(
            "fn main() -> i64 { let mut i = 0; while true { i += 1; } i }",
            optimize=False,
        )
        with pytest.raises(InterpError):
            Interpreter(world, max_steps=1000).call("main")


class TestMemory:
    def test_slots_are_per_activation(self):
        # Recursive function with a local mutable array: each activation
        # gets its own storage.
        src = """
fn rec(depth: i64) -> i64 {
    let mut local = [0; 2];
    local[0] = depth;
    if depth > 0 {
        let below = rec(depth - 1);
        local[0] * 10 + below
    } else {
        local[0]
    }
}
fn main() -> i64 { rec(3) }
"""
        # rec(0)=0, rec(1)=10, rec(2)=30, rec(3)=60 — with *shared*
        # storage the inner activation would clobber local[0] and the
        # result would collapse to 0.
        assert interp_main(src) == 60

    def test_buffer_persists_across_calls(self):
        src = """
fn fill(buf: &[i64], n: i64) -> () {
    for i in 0..n { buf[i] = i * 2; }
}
fn main() -> i64 {
    let b = new_buf_i64(8);
    fill(b, 8);
    b[7]
}
"""
        assert interp_main(src) == 14

    def test_aggregate_load_store(self):
        src = """
fn main() -> i64 {
    let mut pair = [1, 2];
    let copy = pair;
    pair[0] = 99;
    copy[0] + pair[0]
}
"""
        assert interp_main(src) == 100  # value semantics for the copy

    def test_effect_executes_once_per_activation(self):
        # A loop whose memory state flows through the loop header; each
        # store must execute exactly once per iteration.
        src = """
fn main(n: i64) -> i64 {
    let b = new_buf_i64(1);
    for i in 0..n { b[0] += 1; }
    b[0]
}
"""
        assert interp_main(src, 10) == 10

    def test_stale_read_of_old_chain(self):
        # A later block re-traversing an older mem token must see the
        # value at that point, not the final store.
        src = """
fn main() -> i64 {
    let mut x = [5; 1];
    let before = x[0];
    x[0] = 9;
    before * 10 + x[0]
}
"""
        assert interp_main(src) == 59


class TestHigherOrder:
    def test_closures_without_optimization(self):
        src = """
fn twice(f: fn(i64) -> i64, x: i64) -> i64 { f(f(x)) }
fn main(k: i64) -> i64 {
    let shift = 100;
    twice(|v: i64| v + shift, k)
}
"""
        assert interp_main(src, 1) == 201

    def test_returned_closure(self):
        src = """
fn adder(n: i64) -> fn(i64) -> i64 { |x: i64| x + n }
fn main() -> i64 { adder(4)(10) }
"""
        assert interp_main(src) == 14

    def test_stats_counters(self):
        world = compile_source("fn main() -> i64 { 1 + 2 }", optimize=False)
        interp = Interpreter(world)
        interp.call("main")
        assert interp.steps >= 1
